"""EPC signalling procedures, run as simulator processes.

Implements the control-plane choreography the paper relies on:

* **attach** -- default bearer establishment through the central
  gateways (always-on internet connectivity);
* **network-initiated dedicated bearer activation** -- the Section 5.4
  sequence (Request -> Create -> Set-up -> Route): MRS -> PCRF -> PCEF/
  PGW-C -> SGW-C -> MME -> eNB -> UE, with the GW-Cs placing *local*
  GW-U addresses in the F-TEIDs so the bearer's data plane lands on the
  MEC-site switches, then OpenFlow rules pushed by the controller;
* **dedicated bearer deactivation**;
* **release to idle / service request** -- the RRC inactivity cycle
  whose message counts and byte totals are calibrated to the paper's
  measured 15 messages / 2914 bytes (Section 4).

Each procedure is a generator driven by the
:class:`~repro.sim.engine.Simulator`: every control message is a packet
on the :class:`~repro.epc.signalling.SignallingFabric` and the
procedure suspends until it is delivered, so
``ProcedureResult.elapsed`` is *measured simulated time* and any number
of procedures run concurrently, contending on shared channels.  The
synchronous methods (``attach``, ``service_request``, ...) wrap the
``*_async`` variants with
:meth:`~repro.sim.engine.Simulator.run_until_complete`, so existing
call sites keep working -- including calls made from inside event
callbacks while the simulation is running.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.epc import messages as m
from repro.epc.bearer import Bearer, PacketFilter, TrafficFlowTemplate
from repro.epc.entities import (GatewaySite, HSS, MME, PCRF, PGWC, SGWC,
                                UeContext)
from repro.epc.events import (BearerActivated, BearerDeactivated,
                              HandoverCompleted, ProcedureCompleted,
                              ProcedureStarted, ServiceRequestCompleted,
                              UeAttached, UeIpAssigned, UeReleasedToIdle)
from repro.epc.identifiers import FTeid
from repro.epc.messages import ControlMessage
from repro.epc.overhead import ControlLedger
from repro.epc.signalling import (RetryPolicy, SignallingFabric,
                                  SignallingTimeout)
from repro.sdn.openflow import FlowMatch, FlowRule, GtpDecap, GtpEncap, Output

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.enodeb import ENodeB
    from repro.epc.ue import UEDevice
    from repro.sdn.controller import SdnController
    from repro.sim.engine import Process, Simulator

#: Flow-rule priorities: dedicated-bearer DL classification must beat the
#: default bearer's catch-all at the PGW-U.
PRIORITY_DEFAULT = 100
PRIORITY_DEDICATED = 200


@dataclass
class ProcedureResult:
    """Outcome of one signalling procedure.

    ``messages`` are this procedure's own control messages in delivery
    order (each stamped with its delivery time); ``elapsed`` is the
    measured simulated time between ``started_at`` and
    ``completed_at``.

    ``outcome`` is terminal and one of:

    * ``"ok"`` -- completed, no retransmissions needed;
    * ``"retried-ok"`` -- completed, but >= 1 message was retransmitted;
    * ``"timeout"`` -- a message exhausted its retransmission budget
      (the procedure stopped at that hop instead of hanging);
    * ``"rejected"`` -- refused by admission control.

    ``retries`` / ``timer_expiries`` count retransmissions and timer
    firings across the procedure's hops (including its flow-mods).
    """

    name: str
    messages: list[ControlMessage] = field(default_factory=list)
    elapsed: float = 0.0
    bearer: Optional[Bearer] = None
    started_at: float = 0.0
    completed_at: float = 0.0
    outcome: str = "ok"
    retries: int = 0
    timer_expiries: int = 0
    failure: Optional[str] = None
    subject: Any = None

    @property
    def message_count(self) -> int:
        return len(self.messages)

    @property
    def byte_count(self) -> int:
        return sum(msg.size for msg in self.messages)


class EPCControlPlane:
    """Binds the control entities together and runs the procedures.

    Procedures execute as simulator processes over a
    :class:`~repro.epc.signalling.SignallingFabric`; one is created on
    the shared ledger if none is supplied.  The SDN controller is bound
    to the same fabric so flow-mods traverse the OpenFlow channel like
    every other control message.
    """

    def __init__(self, sim: "Simulator", mme: MME, hss: HSS, pcrf: PCRF,
                 sgwc: SGWC, pgwc: PGWC, controller: "SdnController",
                 ledger: Optional[ControlLedger] = None,
                 fabric: Optional[SignallingFabric] = None,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        self.sim = sim
        #: retransmission policy for every hop (None = legacy plain
        #: sends, which assume lossless transports)
        self.retry_policy = retry_policy
        self.mme = mme
        self.hss = hss
        self.pcrf = pcrf
        self.sgwc = sgwc
        self.pgwc = pgwc
        self.controller = controller
        self.ledger = ledger if ledger is not None else controller.ledger
        if controller.ledger is not self.ledger:
            raise ValueError(
                "controller and control plane must share one ledger")
        self.fabric = fabric if fabric is not None else SignallingFabric(
            sim, self.ledger)
        if self.fabric.ledger is not self.ledger:
            raise ValueError(
                "signalling fabric and control plane must share one ledger")
        self._open_core_channels()
        controller.bind_fabric(self.fabric)
        controller.retry_policy = retry_policy
        #: optional GBR admission control (repro.epc.admission)
        self.admission = None
        #: in-flight service requests by IMSI (concurrent triggers join)
        self._service_requests: dict[str, "Process"] = {}

    # -- plumbing ---------------------------------------------------------

    def _open_core_channels(self) -> None:
        """Open the fixed core-network signalling channels."""
        fab = self.fabric
        fab.open_channel("s11", "GTPv2", [self.mme.name], [self.sgwc.name])
        fab.open_channel("s5c", "GTPv2", [self.sgwc.name], [self.pgwc.name])
        fab.open_channel("gx", "Diameter", ["pcrf"], [self.pgwc.name])
        fab.open_channel("rx.mrs", "Diameter", ["mrs"], ["pcrf"])
        for entity in (self.mme, self.sgwc, self.pgwc):
            fab.register_handler(entity.name, entity.handle_message)
        fab.register_handler("pcrf", self.pcrf.handle_message)

    def register_enb(self, enb: "ENodeB") -> None:
        """Open the eNodeB's S1-MME association and its cell's shared
        RRC channel (UEs join the cell via :meth:`join_cell`)."""
        self.register_enb_name(enb.name)
        self.fabric.register_handler(enb.name, enb.handle_message)

    def join_cell(self, ue_name: str, enb_name: str) -> None:
        """Put a UE on its serving cell's shared RRC channel.

        All UEs of a cell contend on the one air-interface channel; at
        handover, joining the target cell re-routes the UE's RRC
        signalling there.
        """
        channel_id = f"rrc.{enb_name}"
        if channel_id not in self.fabric.channels:  # direct-use fallback
            self.register_enb_name(enb_name)
        self.fabric.add_party(channel_id, ue_name, side="b")

    def register_enb_name(self, enb_name: str) -> None:
        self.fabric.open_channel(f"s1mme.{enb_name}", "SCTP",
                                 [enb_name], [self.mme.name])
        self.fabric.open_channel(f"rrc.{enb_name}", "RRC", [enb_name], [])

    def add_site(self, site: GatewaySite) -> None:
        self.sgwc.add_site(site)
        self.pgwc.add_site(site)
        self.controller.register(site.sgw_u)
        self.controller.register(site.pgw_u)

    def _hop(self, result: ProcedureResult, mtype: m.MessageType,
             sender: str, receiver: str, **fields) -> Generator:
        """Send one control message and suspend until delivery.

        With a retry policy configured the hop retransmits on timer
        expiry; exhausting the budget raises
        :class:`~repro.epc.signalling.SignallingTimeout` into the
        procedure, which the ``_guarded`` wrapper turns into a
        terminal ``timeout`` outcome.
        """
        message = yield self.fabric.send_reliable(
            mtype, sender, receiver, policy=self.retry_policy,
            telemetry=result, **fields)
        result.messages.append(message)
        return message

    def _begin(self, name: str, subject) -> ProcedureResult:
        result = ProcedureResult(name, started_at=self.sim.now,
                                 subject=subject)
        self._signal(ProcedureStarted, name=name, subject=subject,
                     time=self.sim.now)
        return result

    def _complete(self, result: ProcedureResult, subject) -> None:
        result.completed_at = self.sim.now
        result.elapsed = result.completed_at - result.started_at
        if result.outcome == "ok" and result.retries:
            result.outcome = "retried-ok"
        self._signal(ProcedureCompleted, name=result.name, subject=subject,
                     result=result)

    def _guarded(self, gen: Generator) -> Generator:
        """Run a procedure generator to a *terminal* result.

        A hop that exhausts its retransmission budget raises
        :class:`~repro.epc.signalling.SignallingTimeout`; instead of
        propagating (which would fail the process and abort
        ``run_until_complete`` with a deadlock-style error), the
        procedure completes with ``outcome="timeout"`` and returns its
        partial result, so callers can always inspect what happened.
        """
        try:
            return (yield from gen)
        except SignallingTimeout as exc:
            result = exc.result
            if not isinstance(result, ProcedureResult):
                raise
            result.outcome = "timeout"
            result.failure = str(exc)
            self._complete(result, result.subject)
            return result

    def _signal(self, event_type, **fields) -> None:
        """Publish a procedure event, skipping construction if unheard."""
        hooks = self.sim.hooks
        if hooks.has(event_type):
            hooks.emit(event_type(**fields))

    # -- flow-rule helpers --------------------------------------------------

    @staticmethod
    def _ul_cookie(bearer: Bearer) -> str:
        return f"{bearer.imsi}:ebi{bearer.ebi}:ul"

    @staticmethod
    def _dl_cookie(bearer: Bearer) -> str:
        return f"{bearer.imsi}:ebi{bearer.ebi}:dl"

    def _flow_add(self, result: ProcedureResult, switch_name: str,
                  rule: FlowRule) -> Generator:
        message = yield self.controller.install_rule(switch_name, rule,
                                                     telemetry=result)
        result.messages.append(message)

    def _flow_del(self, result: ProcedureResult, switch_name: str,
                  cookie: str) -> Generator:
        message = yield self.controller.remove_rules(switch_name, cookie,
                                                     telemetry=result)
        result.messages.append(message)

    def _sgw_ul_rule(self, bearer: Bearer, site: GatewaySite) -> FlowRule:
        return FlowRule(
            FlowMatch(teid=bearer.sgw_s1_fteid.teid),
            [GtpDecap(),
             GtpEncap(bearer.pgw_fteid.teid, site.sgw_u.ip, site.pgw_u.ip),
             Output(site.sgw_ul_port)],
            priority=PRIORITY_DEFAULT, cookie=self._ul_cookie(bearer))

    def _pgw_ul_rule(self, bearer: Bearer, site: GatewaySite) -> FlowRule:
        return FlowRule(
            FlowMatch(teid=bearer.pgw_fteid.teid),
            [GtpDecap(), Output(site.pgw_ul_port)],
            priority=PRIORITY_DEFAULT, cookie=self._ul_cookie(bearer))

    def _pgw_dl_rule(self, bearer: Bearer, site: GatewaySite,
                     server_ip: Optional[str] = None) -> FlowRule:
        if server_ip is None:
            match = FlowMatch(dst_ip=bearer.ue_ip)
            priority = PRIORITY_DEFAULT
        else:
            match = FlowMatch(src_ip=server_ip, dst_ip=bearer.ue_ip)
            priority = PRIORITY_DEDICATED
        return FlowRule(
            match,
            [GtpEncap(bearer.sgw_s5_fteid.teid, site.pgw_u.ip, site.sgw_u.ip),
             Output(site.pgw_dl_port)],
            priority=priority, cookie=self._dl_cookie(bearer))

    def _sgw_dl_rule(self, bearer: Bearer, site: GatewaySite,
                     enb: "ENodeB") -> FlowRule:
        priority = (PRIORITY_DEFAULT if bearer.default
                    else PRIORITY_DEDICATED)
        return FlowRule(
            FlowMatch(teid=bearer.sgw_s5_fteid.teid),
            [GtpDecap(),
             GtpEncap(bearer.enb_fteid.teid, site.sgw_u.ip,
                      bearer.enb_fteid.address),
             Output(site.sgw_dl_port(enb.name))],
            priority=priority, cookie=self._dl_cookie(bearer))

    def _install_uplink_flows(self, result: ProcedureResult, bearer: Bearer,
                              site: GatewaySite) -> Generator:
        if not site.pgw_ul_port:
            raise RuntimeError(
                f"site {site.name!r} has no SGi destination; attach a "
                f"server to it before establishing bearers")
        yield from self._install_sgw_ul_rule(result, bearer, site)
        yield from self._flow_add(result, site.pgw_u.name,
                                  self._pgw_ul_rule(bearer, site))

    def _install_sgw_ul_rule(self, result: ProcedureResult, bearer: Bearer,
                             site: GatewaySite) -> Generator:
        yield from self._flow_add(result, site.sgw_u.name,
                                  self._sgw_ul_rule(bearer, site))

    def _install_downlink_flows(self, result: ProcedureResult, bearer: Bearer,
                                site: GatewaySite, enb: "ENodeB",
                                server_ip: Optional[str] = None) -> Generator:
        yield from self._install_pgw_dl_rule(result, bearer, site, server_ip)
        yield from self._install_sgw_dl_rule(result, bearer, site, enb)

    def _install_pgw_dl_rule(self, result: ProcedureResult, bearer: Bearer,
                             site: GatewaySite,
                             server_ip: Optional[str] = None) -> Generator:
        yield from self._flow_add(result, site.pgw_u.name,
                                  self._pgw_dl_rule(bearer, site, server_ip))

    def _install_sgw_dl_rule(self, result: ProcedureResult, bearer: Bearer,
                             site: GatewaySite, enb: "ENodeB") -> Generator:
        yield from self._flow_add(result, site.sgw_u.name,
                                  self._sgw_dl_rule(bearer, site, enb))

    def _allocate_tunnel_endpoints(self, bearer: Bearer, site: GatewaySite,
                                   enb: "ENodeB") -> None:
        bearer.sgw_s1_fteid = FTeid(site.sgw_teids.allocate(), site.sgw_u.ip)
        bearer.sgw_s5_fteid = FTeid(site.sgw_teids.allocate(), site.sgw_u.ip)
        bearer.pgw_fteid = FTeid(site.pgw_teids.allocate(), site.pgw_u.ip)
        bearer.enb_fteid = enb.setup_bearer(
            bearer.ue_ip, bearer.ebi, bearer.sgw_s1_fteid,
            site.enb_port(enb.name))
        bearer.gateway_site = site.name

    # -- procedures -----------------------------------------------------------

    def attach(self, ue: "UEDevice", enb: "ENodeB",
               site_name: str = "central") -> ProcedureResult:
        """Attach a UE: authentication + default bearer establishment."""
        return self.sim.run_until_complete(
            self.attach_async(ue, enb, site_name))

    def attach_async(self, ue: "UEDevice", enb: "ENodeB",
                     site_name: str = "central") -> "Process":
        """Start an attach as a process; returns immediately."""
        return self.sim.spawn(self._guarded(self._attach_proc(ue, enb, site_name)),
                              name=f"attach:{ue.name}")

    def _attach_proc(self, ue: "UEDevice", enb: "ENodeB",
                     site_name: str) -> Generator:
        if ue.attached:
            raise RuntimeError(f"{ue.name} is already attached")
        profile = self.hss.lookup(ue.imsi)     # raises for unknown IMSI
        site = self.sgwc.site(site_name)
        result = self._begin("attach", ue)

        yield from self._hop(result, m.RRC_CONNECTION_REQUEST, ue.name,
                             enb.name)
        yield from self._hop(result, m.RRC_CONNECTION_SETUP, enb.name,
                             ue.name)
        yield from self._hop(result, m.RRC_CONNECTION_SETUP_COMPLETE,
                             ue.name, enb.name)
        yield from self._hop(result, m.ATTACH_INITIAL_UE_MESSAGE, enb.name,
                             self.mme.name, imsi=ue.imsi)
        yield from self._hop(result, m.CREATE_SESSION_REQUEST, self.mme.name,
                             self.sgwc.name)
        yield from self._hop(result, m.CREATE_SESSION_REQUEST, self.sgwc.name,
                             self.pgwc.name)

        ue.assign_ip(self.pgwc.allocate_ue_ip())
        # announced synchronously so fabric-level subscribers (radio-port
        # registration) run before the eNodeB validates the bearer below
        self._signal(UeIpAssigned, ue=ue, address=ue.ip)
        bearer = Bearer(ebi=ue.bearers.allocate_ebi(), qci=profile.default_qci,
                        imsi=ue.imsi, ue_ip=ue.ip, default=True)
        self._allocate_tunnel_endpoints(bearer, site, enb)

        yield from self._hop(result, m.CREATE_SESSION_RESPONSE,
                             self.pgwc.name, self.sgwc.name,
                             pgw_fteid=str(bearer.pgw_fteid))
        yield from self._hop(result, m.CREATE_SESSION_RESPONSE,
                             self.sgwc.name, self.mme.name,
                             sgw_fteid=str(bearer.sgw_s1_fteid))
        yield from self._hop(result, m.INITIAL_CONTEXT_SETUP_REQUEST,
                             self.mme.name, enb.name)
        yield from self._hop(result, m.RRC_CONNECTION_RECONFIGURATION,
                             enb.name, ue.name)
        yield from self._hop(result,
                             m.RRC_CONNECTION_RECONFIGURATION_COMPLETE,
                             ue.name, enb.name)
        yield from self._hop(result, m.INITIAL_CONTEXT_SETUP_RESPONSE,
                             enb.name, self.mme.name,
                             enb_fteid=str(bearer.enb_fteid))
        yield from self._hop(result, m.ATTACH_COMPLETE_UPLINK, enb.name,
                             self.mme.name)
        yield from self._hop(result, m.MODIFY_BEARER_REQUEST, self.mme.name,
                             self.sgwc.name)
        yield from self._hop(result, m.MODIFY_BEARER_RESPONSE, self.sgwc.name,
                             self.mme.name)

        yield from self._install_uplink_flows(result, bearer, site)
        yield from self._install_downlink_flows(result, bearer, site, enb)

        ue.add_bearer(bearer)
        ue.attached = True
        ue.rrc_connected = True
        ue.control_plane = self
        self.mme.register(UeContext(imsi=ue.imsi, ue=ue, enb=enb))

        result.bearer = bearer
        self._complete(result, ue)
        self._signal(UeAttached, ue=ue, enb=enb, result=result)
        return result

    def activate_dedicated_bearer(
            self, ue: "UEDevice", service_id: str, server_ip: str,
            site_name: str, server_port: Optional[int] = None,
            requested_by: str = "mrs") -> ProcedureResult:
        """Network-initiated dedicated bearer to a CI server (Section 5.4)."""
        return self.sim.run_until_complete(
            self.activate_dedicated_bearer_async(
                ue, service_id, server_ip, site_name, server_port,
                requested_by))

    def activate_dedicated_bearer_async(
            self, ue: "UEDevice", service_id: str, server_ip: str,
            site_name: str, server_port: Optional[int] = None,
            requested_by: str = "mrs") -> "Process":
        return self.sim.spawn(
            self._guarded(
                self._activate_proc(ue, service_id, server_ip, site_name,
                                    server_port, requested_by)),
            name=f"activate:{ue.name}:{service_id}")

    def _activate_proc(self, ue: "UEDevice", service_id: str, server_ip: str,
                       site_name: str, server_port: Optional[int],
                       requested_by: str) -> Generator:
        context = self.mme.context(ue.imsi)
        enb = context.enb
        site = self.sgwc.site(site_name)
        result = self._begin("activate-dedicated-bearer", ue)

        # (1) Request + (2) Create: MRS -> PCRF -> PCEF in PGW-C
        yield from self._hop(result, m.AA_REQUEST, requested_by, "pcrf",
                             service=service_id, ue_ip=ue.ip,
                             server_ip=server_ip)
        rule = self.pcrf.generate_rule(service_id, ue.ip, server_ip,
                                       server_port)
        yield from self._hop(result, m.RE_AUTH_REQUEST, "pcrf",
                             self.pgwc.name, qci=rule.qci, service=service_id)
        self.pgwc.pcef_install(ue.imsi, rule)
        yield from self._hop(result, m.RE_AUTH_ANSWER, self.pgwc.name, "pcrf")

        # GBR admission (optional): reserve bandwidth, preempting
        # lower-ARP bearers if the rule's ARP permits
        ebi = ue.bearers.allocate_ebi()
        if self.admission is not None:
            try:
                self.admission.request(ue.imsi, ebi, site_name, rule.qci,
                                       rule.gbr, rule.arp)
            except Exception:
                self.pgwc.pcef_remove(ue.imsi, service_id)
                yield from self._hop(result, m.AA_ANSWER, "pcrf",
                                     requested_by, outcome="rejected")
                result.outcome = "rejected"
                result.failure = "admission rejected"
                self._complete(result, ue)
                raise
            for victim in self.admission.drain_preempted():
                victim_ue = self.mme.context(victim.imsi).ue
                yield from self._deactivate_proc(
                    victim_ue, victim.ebi, requested_by="admission")

        # (3) Set-up: GW-Cs place *local* GW-U addresses in the F-TEIDs
        bearer = Bearer(ebi=ebi, qci=rule.qci,
                        imsi=ue.imsi, ue_ip=ue.ip, default=False)
        bearer.tft = TrafficFlowTemplate([PacketFilter(
            precedence=rule.precedence, direction="bidirectional",
            remote_address=server_ip, remote_port=server_port)])
        self._allocate_tunnel_endpoints(bearer, site, enb)

        yield from self._hop(result, m.CREATE_BEARER_REQUEST, self.pgwc.name,
                             self.sgwc.name, pgw_fteid=str(bearer.pgw_fteid))
        yield from self._hop(result, m.CREATE_BEARER_REQUEST, self.sgwc.name,
                             self.mme.name,
                             sgw_fteid=str(bearer.sgw_s1_fteid))
        yield from self._hop(result, m.ERAB_SETUP_REQUEST, self.mme.name,
                             enb.name, sgw_fteid=str(bearer.sgw_s1_fteid))
        yield from self._hop(result, m.RRC_CONNECTION_RECONFIGURATION,
                             enb.name, ue.name, ebi=bearer.ebi,
                             qci=bearer.qci, tft_remote=server_ip)
        yield from self._hop(result,
                             m.RRC_CONNECTION_RECONFIGURATION_COMPLETE,
                             ue.name, enb.name)
        yield from self._hop(result, m.ERAB_SETUP_RESPONSE, enb.name,
                             self.mme.name, enb_fteid=str(bearer.enb_fteid))
        yield from self._hop(result, m.CREATE_BEARER_RESPONSE, self.mme.name,
                             self.sgwc.name)
        yield from self._hop(result, m.CREATE_BEARER_RESPONSE, self.sgwc.name,
                             self.pgwc.name)
        yield from self._hop(result, m.AA_ANSWER, "pcrf", requested_by)

        # (4) Route: OpenFlow rules onto the local GW-Us
        yield from self._install_uplink_flows(result, bearer, site)
        yield from self._install_downlink_flows(result, bearer, site, enb,
                                                server_ip=server_ip)

        ue.add_bearer(bearer)

        result.bearer = bearer
        self._complete(result, ue)
        self._signal(BearerActivated, ue=ue, bearer=bearer, result=result)
        return result

    def deactivate_dedicated_bearer(self, ue: "UEDevice", ebi: int,
                                    requested_by: str = "mrs"
                                    ) -> ProcedureResult:
        """Tear down a dedicated bearer and its flow state."""
        return self.sim.run_until_complete(
            self.deactivate_dedicated_bearer_async(ue, ebi, requested_by))

    def deactivate_dedicated_bearer_async(self, ue: "UEDevice", ebi: int,
                                          requested_by: str = "mrs"
                                          ) -> "Process":
        return self.sim.spawn(self._guarded(self._deactivate_proc(ue, ebi, requested_by)),
                              name=f"deactivate:{ue.name}:ebi{ebi}")

    def _deactivate_proc(self, ue: "UEDevice", ebi: int,
                         requested_by: str) -> Generator:
        context = self.mme.context(ue.imsi)
        enb = context.enb
        bearer = ue.bearers.bearers.get(ebi)
        if bearer is None or bearer.default:
            raise ValueError(f"EBI {ebi} is not a dedicated bearer of "
                             f"{ue.name}")
        site = self.sgwc.site(bearer.gateway_site)
        result = self._begin("deactivate-dedicated-bearer", ue)

        yield from self._hop(result, m.SESSION_TERMINATION_REQUEST,
                             requested_by, "pcrf")
        yield from self._hop(result, m.RE_AUTH_REQUEST, "pcrf",
                             self.pgwc.name)
        yield from self._hop(result, m.DELETE_BEARER_REQUEST, self.pgwc.name,
                             self.sgwc.name)
        yield from self._hop(result, m.DELETE_BEARER_REQUEST, self.sgwc.name,
                             self.mme.name)
        yield from self._hop(result, m.ERAB_RELEASE_COMMAND, self.mme.name,
                             enb.name)
        yield from self._hop(result, m.RRC_CONNECTION_RECONFIGURATION,
                             enb.name, ue.name)
        yield from self._hop(result,
                             m.RRC_CONNECTION_RECONFIGURATION_COMPLETE,
                             ue.name, enb.name)
        yield from self._hop(result, m.ERAB_RELEASE_RESPONSE, enb.name,
                             self.mme.name)
        yield from self._hop(result, m.DELETE_BEARER_RESPONSE, self.mme.name,
                             self.sgwc.name)
        yield from self._hop(result, m.DELETE_BEARER_RESPONSE, self.sgwc.name,
                             self.pgwc.name)
        yield from self._hop(result, m.RE_AUTH_ANSWER, self.pgwc.name,
                             "pcrf")
        yield from self._hop(result, m.SESSION_TERMINATION_ANSWER, "pcrf",
                             requested_by)

        service_ids = [sid for (imsi, sid) in self.pgwc.pcef_rules
                       if imsi == ue.imsi]
        for sid in service_ids:
            self.pgwc.pcef_remove(ue.imsi, sid)

        yield from self._flow_del(result, site.sgw_u.name,
                                  self._ul_cookie(bearer))
        yield from self._flow_del(result, site.pgw_u.name,
                                  self._ul_cookie(bearer))
        yield from self._flow_del(result, site.sgw_u.name,
                                  self._dl_cookie(bearer))
        yield from self._flow_del(result, site.pgw_u.name,
                                  self._dl_cookie(bearer))

        site.sgw_teids.release(bearer.sgw_s1_fteid.teid)
        site.sgw_teids.release(bearer.sgw_s5_fteid.teid)
        site.pgw_teids.release(bearer.pgw_fteid.teid)
        enb.release_bearer(ue.ip, ebi)
        ue.remove_bearer(ebi)
        if self.admission is not None:
            self.admission.release(ue.imsi, ebi, bearer.gateway_site)

        result.bearer = bearer
        self._complete(result, ue)
        self._signal(BearerDeactivated, ue=ue, ebi=ebi, result=result)
        return result

    def release_to_idle(self, ue: "UEDevice") -> ProcedureResult:
        """RRC-inactivity release: the calibrated 7-message sequence
        (3 SCTP + 2 GTPv2 + 2 OpenFlow) for a single-bearer UE."""
        return self.sim.run_until_complete(self.release_to_idle_async(ue))

    def release_to_idle_async(self, ue: "UEDevice") -> "Process":
        return self.sim.spawn(self._guarded(self._release_proc(ue)),
                              name=f"release:{ue.name}")

    def _release_proc(self, ue: "UEDevice") -> Generator:
        context = self.mme.context(ue.imsi)
        enb = context.enb
        result = self._begin("release-to-idle", ue)

        yield from self._hop(result, m.UE_CONTEXT_RELEASE_REQUEST, enb.name,
                             self.mme.name)
        yield from self._hop(result, m.RELEASE_ACCESS_BEARERS_REQUEST,
                             self.mme.name, self.sgwc.name)
        yield from self._hop(result, m.RELEASE_ACCESS_BEARERS_RESPONSE,
                             self.sgwc.name, self.mme.name)
        yield from self._hop(result, m.UE_CONTEXT_RELEASE_COMMAND,
                             self.mme.name, enb.name)
        yield from self._hop(result, m.UE_CONTEXT_RELEASE_COMPLETE, enb.name,
                             self.mme.name)

        # only the S1 leg is torn down: the SGW-U's rules go, but the
        # PGW-U keeps tunnelling downlink toward the SGW-U, where
        # misses feed the paging buffer (see repro.epc.paging)
        for bearer in list(ue.bearers):
            if not bearer.active:
                continue
            site = self.sgwc.site(bearer.gateway_site)
            yield from self._flow_del(result, site.sgw_u.name,
                                      self._ul_cookie(bearer))
            yield from self._flow_del(result, site.sgw_u.name,
                                      self._dl_cookie(bearer))
            bearer.active = False

        ue.rrc_connected = False
        context.state = "idle"
        self._complete(result, ue)
        self._signal(UeReleasedToIdle, ue=ue, result=result)
        return result

    def service_request(self, ue: "UEDevice") -> ProcedureResult:
        """Idle -> connected re-establishment: the calibrated 8-message
        sequence (4 SCTP + 2 GTPv2 + 2 OpenFlow) for a single-bearer UE."""
        context = self.mme.context(ue.imsi)
        if (context.state == "connected"
                and ue.imsi not in self._service_requests):
            return ProcedureResult("service-request(noop)")
        return self.sim.run_until_complete(self.service_request_async(ue))

    def service_request_async(self, ue: "UEDevice") -> "Process":
        """Start (or join) the UE's service request.

        Concurrent triggers -- paging and an uplink promotion racing,
        say -- share one in-flight procedure instead of double-signalling.
        """
        proc = self._service_requests.get(ue.imsi)
        if proc is not None and not proc.finished:
            return proc
        proc = self.sim.spawn(self._guarded(self._service_request_proc(ue)),
                              name=f"service-request:{ue.name}")
        self._service_requests[ue.imsi] = proc
        return proc

    def _service_request_proc(self, ue: "UEDevice") -> Generator:
        try:
            context = self.mme.context(ue.imsi)
            enb = context.enb
            if context.state == "connected":
                return ProcedureResult("service-request(noop)")
            result = self._begin("service-request", ue)

            yield from self._hop(result, m.INITIAL_UE_MESSAGE, enb.name,
                                 self.mme.name)
            yield from self._hop(result, m.INITIAL_CONTEXT_SETUP_REQUEST,
                                 self.mme.name, enb.name)
            yield from self._hop(result, m.INITIAL_CONTEXT_SETUP_RESPONSE,
                                 enb.name, self.mme.name)
            yield from self._hop(result, m.UPLINK_NAS_TRANSPORT, enb.name,
                                 self.mme.name)
            yield from self._hop(result, m.MODIFY_BEARER_REQUEST,
                                 self.mme.name, self.sgwc.name)
            yield from self._hop(result, m.MODIFY_BEARER_RESPONSE,
                                 self.sgwc.name, self.mme.name)

            for bearer in list(ue.bearers):
                if bearer.active:
                    continue
                site = self.sgwc.site(bearer.gateway_site)
                yield from self._install_sgw_ul_rule(result, bearer, site)
                yield from self._install_sgw_dl_rule(result, bearer, site,
                                                     enb)
                bearer.active = True

            ue.rrc_connected = True
            context.state = "connected"
            self._complete(result, ue)
            self._signal(ServiceRequestCompleted, ue=ue, result=result)
            return result
        finally:
            self._service_requests.pop(ue.imsi, None)

    def handover(self, ue: "UEDevice", target_enb: "ENodeB",
                 radio_port: str) -> ProcedureResult:
        """X2-based handover with S1 path switch.

        The SGW-U is the mobility anchor: every bearer keeps its S5
        segment and its serving gateway site; only the S1 leg moves --
        the target eNodeB allocates fresh downlink TEIDs and the SGW-C
        re-points the SGW-U's downlink flow rules at the target.  A
        dedicated MEC bearer therefore survives the handover with its
        local gateways intact (the CI server does not change).

        ``radio_port`` is the target eNodeB's port name for the UE's
        (re-attached) radio link; the network builder wires the link
        before invoking the procedure.
        """
        return self.sim.run_until_complete(
            self.handover_async(ue, target_enb, radio_port))

    def handover_async(self, ue: "UEDevice", target_enb: "ENodeB",
                       radio_port: str) -> "Process":
        return self.sim.spawn(self._guarded(self._handover_proc(ue, target_enb, radio_port)),
                              name=f"handover:{ue.name}")

    def _handover_proc(self, ue: "UEDevice", target_enb: "ENodeB",
                       radio_port: str) -> Generator:
        context = self.mme.context(ue.imsi)
        source = context.enb
        if source is target_enb:
            return ProcedureResult("handover(noop)")
        if not ue.rrc_connected:
            raise RuntimeError(
                f"{ue.name} is idle; handover needs RRC connected")
        result = self._begin("handover", ue)

        # preparation over X2: target admits the UE and all its bearers
        yield from self._hop(result, m.X2_HANDOVER_REQUEST, source.name,
                             target_enb.name, imsi=ue.imsi)
        target_enb.register_ue(ue.ip, radio_port)
        active = [b for b in ue.bearers if b.active]
        for bearer in active:
            site = self.sgwc.site(bearer.gateway_site)
            bearer.enb_fteid = target_enb.setup_bearer(
                ue.ip, bearer.ebi, bearer.sgw_s1_fteid,
                site.enb_port(target_enb.name))
        yield from self._hop(result, m.X2_HANDOVER_REQUEST_ACK,
                             target_enb.name, source.name)

        # execution: the UE is commanded over and syncs to the target
        yield from self._hop(result, m.RRC_CONNECTION_RECONFIGURATION,
                             source.name, ue.name, handover=True)
        yield from self._hop(result, m.X2_SN_STATUS_TRANSFER, source.name,
                             target_enb.name)
        yield from self._hop(result,
                             m.RRC_CONNECTION_RECONFIGURATION_COMPLETE,
                             ue.name, target_enb.name)

        # completion: S1 path switch re-anchors the downlink at the SGW-Us
        yield from self._hop(result, m.PATH_SWITCH_REQUEST, target_enb.name,
                             self.mme.name)
        yield from self._hop(result, m.MODIFY_BEARER_REQUEST, self.mme.name,
                             self.sgwc.name)
        yield from self._hop(result, m.MODIFY_BEARER_RESPONSE, self.sgwc.name,
                             self.mme.name)
        for bearer in active:
            site = self.sgwc.site(bearer.gateway_site)
            yield from self._flow_del(result, site.sgw_u.name,
                                      self._dl_cookie(bearer))
            yield from self._install_sgw_dl_rule(result, bearer, site,
                                                 target_enb)
        yield from self._hop(result, m.PATH_SWITCH_REQUEST_ACK, self.mme.name,
                             target_enb.name)
        yield from self._hop(result, m.X2_UE_CONTEXT_RELEASE,
                             target_enb.name, source.name)
        for bearer in active:
            source.release_bearer(ue.ip, bearer.ebi)
        source.radio_ports.pop(ue.ip, None)
        context.enb = target_enb

        self._complete(result, ue)
        self._signal(HandoverCompleted, ue=ue, source=source,
                     target=target_enb, result=result)
        return result

    def resteer_bearer(self, ue: "UEDevice", ebi: int,
                       target_site_name: str,
                       server_ip: Optional[str] = None) -> ProcedureResult:
        """Move a dedicated bearer's gateway anchor to another site."""
        return self.sim.run_until_complete(
            self.resteer_bearer_async(ue, ebi, target_site_name, server_ip))

    def resteer_bearer_async(self, ue: "UEDevice", ebi: int,
                             target_site_name: str,
                             server_ip: Optional[str] = None) -> "Process":
        return self.sim.spawn(
            self._guarded(self._resteer_proc(ue, ebi, target_site_name,
                                             server_ip)),
            name=f"resteer:{ue.name}:ebi{ebi}")

    def _resteer_proc(self, ue: "UEDevice", ebi: int, target_site_name: str,
                      server_ip: Optional[str] = None) -> Generator:
        """Re-anchor a dedicated bearer at the gateway set of another
        edge site (the SDN half of MEC application-context relocation).

        The GW-Cs allocate fresh tunnel endpoints on the target site,
        the eNodeB's S1 leg is re-pointed and the controller programs
        the target-site switches while withdrawing the source-site
        rules -- all eight flow-mods issued as one concurrent batch, so
        the programming window is the slowest OpenFlow channel rather
        than the sum.  ``server_ip`` (when given) rewrites the bearer's
        UL TFT and the PGW-U downlink classifier at the new server
        instance; omitted, the existing TFT remote address is kept.
        Idempotent under retries: duplicate flow-mod deliveries are
        suppressed, re-installs replace in place and deletes of absent
        cookies are no-ops.
        """
        context = self.mme.context(ue.imsi)
        enb = context.enb
        bearer = ue.bearers.bearers.get(ebi)
        if bearer is None or bearer.default:
            raise ValueError(f"EBI {ebi} is not a dedicated bearer of "
                             f"{ue.name}")
        old_site_name = bearer.gateway_site
        if old_site_name == target_site_name:
            return ProcedureResult("resteer-bearer(noop)", bearer=bearer)
        old_site = self.sgwc.site(old_site_name)
        new_site = self.sgwc.site(target_site_name)
        if server_ip is None:
            for pf in bearer.tft.filters:
                if pf.remote_address is not None:
                    server_ip = pf.remote_address
                    break
        result = self._begin("resteer-bearer", ue)

        # GW-C coordination: the anchor move is a bearer modification
        yield from self._hop(result, m.MODIFY_BEARER_REQUEST, self.mme.name,
                             self.sgwc.name, imsi=ue.imsi, ebi=ebi,
                             target_site=target_site_name)
        yield from self._hop(result, m.MODIFY_BEARER_REQUEST, self.sgwc.name,
                             self.pgwc.name, imsi=ue.imsi, ebi=ebi,
                             target_site=target_site_name)

        old_sgw_s1 = bearer.sgw_s1_fteid
        old_sgw_s5 = bearer.sgw_s5_fteid
        old_pgw = bearer.pgw_fteid

        # repoint the S1 leg and rewrite the UL TFT synchronously --
        # from here until the target-site flow-mods land, uplink CI
        # packets miss in the target switches (counted, dropped); the
        # paging manager ignores misses for a connected UE, so this
        # window is pure measured interruption, not spurious paging.
        enb.release_bearer(ue.ip, ebi)
        self._allocate_tunnel_endpoints(bearer, new_site, enb)
        if server_ip is not None and bearer.tft.filters:
            bearer.tft = TrafficFlowTemplate(
                [replace(pf, remote_address=server_ip)
                 for pf in bearer.tft.filters])

        ops = [
            ("add", new_site.sgw_u.name, self._sgw_ul_rule(bearer, new_site)),
            ("add", new_site.pgw_u.name, self._pgw_ul_rule(bearer, new_site)),
            ("add", new_site.pgw_u.name,
             self._pgw_dl_rule(bearer, new_site, server_ip)),
            ("add", new_site.sgw_u.name,
             self._sgw_dl_rule(bearer, new_site, enb)),
            ("delete", old_site.sgw_u.name, self._ul_cookie(bearer)),
            ("delete", old_site.pgw_u.name, self._ul_cookie(bearer)),
            ("delete", old_site.pgw_u.name, self._dl_cookie(bearer)),
            ("delete", old_site.sgw_u.name, self._dl_cookie(bearer)),
        ]
        for future in self.controller.apply_batch(ops, telemetry=result):
            message = yield future
            result.messages.append(message)
        bearer.active = True

        yield from self._hop(result, m.MODIFY_BEARER_RESPONSE,
                             self.pgwc.name, self.sgwc.name)
        yield from self._hop(result, m.MODIFY_BEARER_RESPONSE,
                             self.sgwc.name, self.mme.name)

        old_site.sgw_teids.release(old_sgw_s1.teid)
        old_site.sgw_teids.release(old_sgw_s5.teid)
        old_site.pgw_teids.release(old_pgw.teid)

        result.bearer = bearer
        self._complete(result, ue)
        return result

    def suspend_bearer_flows(self, ue: "UEDevice",
                             ebi: int) -> ProcedureResult:
        """Withdraw a dedicated bearer's flow rules without tearing it
        down (the break half of break-before-make relocation)."""
        return self.sim.run_until_complete(
            self.suspend_bearer_flows_async(ue, ebi))

    def suspend_bearer_flows_async(self, ue: "UEDevice",
                                   ebi: int) -> "Process":
        return self.sim.spawn(
            self._guarded(self._suspend_proc(ue, ebi)),
            name=f"suspend:{ue.name}:ebi{ebi}")

    def _suspend_proc(self, ue: "UEDevice", ebi: int) -> Generator:
        """Delete a dedicated bearer's four flow rules at its current
        site and deactivate its UL TFT, leaving the bearer context and
        tunnel endpoints intact.  Traffic falls back to the default
        bearer until a subsequent :meth:`resteer_bearer` reinstalls a
        path; the bearer records keep their site so the re-steer knows
        where the stale state lives.
        """
        bearer = ue.bearers.bearers.get(ebi)
        if bearer is None or bearer.default:
            raise ValueError(f"EBI {ebi} is not a dedicated bearer of "
                             f"{ue.name}")
        site = self.sgwc.site(bearer.gateway_site)
        result = self._begin("suspend-bearer-flows", ue)
        bearer.active = False
        ops = [
            ("delete", site.sgw_u.name, self._ul_cookie(bearer)),
            ("delete", site.pgw_u.name, self._ul_cookie(bearer)),
            ("delete", site.pgw_u.name, self._dl_cookie(bearer)),
            ("delete", site.sgw_u.name, self._dl_cookie(bearer)),
        ]
        for future in self.controller.apply_batch(ops, telemetry=result):
            message = yield future
            result.messages.append(message)
        result.bearer = bearer
        self._complete(result, ue)
        return result

    def s1_handover(self, ue: "UEDevice", target_enb: "ENodeB",
                    radio_port: str) -> ProcedureResult:
        """S1 (MME-coordinated) handover, for cells without an X2 link.

        Same data-plane outcome as :meth:`handover` -- the SGW-U
        anchors every bearer and only the S1 leg moves -- but the
        preparation and completion run through the MME, costing more
        signalling and a longer interruption.
        """
        return self.sim.run_until_complete(
            self.s1_handover_async(ue, target_enb, radio_port))

    def s1_handover_async(self, ue: "UEDevice", target_enb: "ENodeB",
                          radio_port: str) -> "Process":
        return self.sim.spawn(
            self._guarded(self._s1_handover_proc(ue, target_enb, radio_port)),
            name=f"s1-handover:{ue.name}")

    def _s1_handover_proc(self, ue: "UEDevice", target_enb: "ENodeB",
                          radio_port: str) -> Generator:
        context = self.mme.context(ue.imsi)
        source = context.enb
        if source is target_enb:
            return ProcedureResult("s1-handover(noop)")
        if not ue.rrc_connected:
            raise RuntimeError(
                f"{ue.name} is idle; handover needs RRC connected")
        result = self._begin("s1-handover", ue)

        # preparation through the MME
        yield from self._hop(result, m.HANDOVER_REQUIRED, source.name,
                             self.mme.name, imsi=ue.imsi)
        yield from self._hop(result, m.HANDOVER_REQUEST, self.mme.name,
                             target_enb.name)
        target_enb.register_ue(ue.ip, radio_port)
        active = [b for b in ue.bearers if b.active]
        for bearer in active:
            site = self.sgwc.site(bearer.gateway_site)
            bearer.enb_fteid = target_enb.setup_bearer(
                ue.ip, bearer.ebi, bearer.sgw_s1_fteid,
                site.enb_port(target_enb.name))
        yield from self._hop(result, m.HANDOVER_REQUEST_ACK, target_enb.name,
                             self.mme.name)
        yield from self._hop(result, m.HANDOVER_COMMAND, self.mme.name,
                             source.name)

        # execution over the air
        yield from self._hop(result, m.RRC_CONNECTION_RECONFIGURATION,
                             source.name, ue.name, handover=True)
        yield from self._hop(result,
                             m.RRC_CONNECTION_RECONFIGURATION_COMPLETE,
                             ue.name, target_enb.name)
        yield from self._hop(result, m.HANDOVER_NOTIFY, target_enb.name,
                             self.mme.name)

        # completion: bearer modification + downlink path switch
        yield from self._hop(result, m.MODIFY_BEARER_REQUEST, self.mme.name,
                             self.sgwc.name)
        yield from self._hop(result, m.MODIFY_BEARER_RESPONSE, self.sgwc.name,
                             self.mme.name)
        for bearer in active:
            site = self.sgwc.site(bearer.gateway_site)
            yield from self._flow_del(result, site.sgw_u.name,
                                      self._dl_cookie(bearer))
            yield from self._install_sgw_dl_rule(result, bearer, site,
                                                 target_enb)

        # the MME releases the source-side context
        yield from self._hop(result, m.UE_CONTEXT_RELEASE_COMMAND,
                             self.mme.name, source.name)
        yield from self._hop(result, m.UE_CONTEXT_RELEASE_COMPLETE,
                             source.name, self.mme.name)
        for bearer in active:
            source.release_bearer(ue.ip, bearer.ebi)
        source.radio_ports.pop(ue.ip, None)
        context.enb = target_enb

        self._complete(result, ue)
        self._signal(HandoverCompleted, ue=ue, source=source,
                     target=target_enb, result=result)
        return result
