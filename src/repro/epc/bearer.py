"""EPS bearers and Traffic Flow Templates.

A bearer is the LTE connectivity primitive: a tunnel path
UE <-radio-> eNodeB <-S1/GTP-> SGW-U <-S5/GTP-> PGW-U, identified on the
UE side by an EPS Bearer Identity (EBI, 5..15).  Traffic Flow Templates
(TFTs) are ordered packet filters (essentially five-tuples with
wildcards) that classify traffic onto bearers -- uplink TFTs live in the
UE's LTE modem, downlink TFTs in the PGW.  This on-device classification
is what lets ACACIA steer only CI traffic onto the MEC dedicated bearer
without any middlebox inspection (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.epc.identifiers import FTeid
from repro.epc.qos import qos_for
from repro.sim.packet import Packet

#: First EBI value; 3GPP reserves 0-4.
MIN_EBI = 5
MAX_EBI = 15


@dataclass(frozen=True)
class PacketFilter:
    """One TFT packet-filter component (five-tuple with wildcards).

    ``None`` fields match anything.  ``precedence`` orders evaluation
    (lower value wins), as in TS 24.008.
    """

    precedence: int = 255
    direction: str = "bidirectional"    # "uplink" | "downlink" | "bidirectional"
    remote_address: Optional[str] = None
    local_address: Optional[str] = None
    protocol: Optional[str] = None
    remote_port: Optional[int] = None
    local_port: Optional[int] = None

    def matches(self, packet: Packet, direction: str) -> bool:
        """Test a packet travelling ``direction`` ("uplink"/"downlink")."""
        if self.direction != "bidirectional" and self.direction != direction:
            return False
        if direction == "uplink":
            local, remote = packet.src, packet.dst
            local_port, remote_port = packet.src_port, packet.dst_port
        else:
            local, remote = packet.dst, packet.src
            local_port, remote_port = packet.dst_port, packet.src_port
        if self.remote_address is not None and remote != self.remote_address:
            return False
        if self.local_address is not None and local != self.local_address:
            return False
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.remote_port is not None and remote_port != self.remote_port:
            return False
        if self.local_port is not None and local_port != self.local_port:
            return False
        return True


class TrafficFlowTemplate:
    """An ordered set of packet filters attached to one bearer."""

    def __init__(self, filters: Optional[list[PacketFilter]] = None) -> None:
        self.filters: list[PacketFilter] = list(filters or [])
        self.filters.sort(key=lambda f: f.precedence)

    def add(self, packet_filter: PacketFilter) -> None:
        self.filters.append(packet_filter)
        self.filters.sort(key=lambda f: f.precedence)

    def matches(self, packet: Packet, direction: str) -> bool:
        return any(f.matches(packet, direction) for f in self.filters)

    def __len__(self) -> int:
        return len(self.filters)


@dataclass
class Bearer:
    """One EPS bearer (default or dedicated).

    The tunnel endpoints are filled in progressively during the setup
    procedure: ``enb_fteid``/``sgw_s1_fteid`` bound the S1 segment and
    ``sgw_s5_fteid``/``pgw_fteid`` the S5 segment.  For an ACACIA MEC
    bearer the SGW/PGW F-TEIDs point at the *local* edge GW-Us.
    """

    ebi: int
    qci: int
    imsi: str
    ue_ip: str
    default: bool = False
    tft: TrafficFlowTemplate = field(default_factory=TrafficFlowTemplate)
    # tunnel endpoints (filled during setup)
    enb_fteid: Optional[FTeid] = None
    sgw_s1_fteid: Optional[FTeid] = None
    sgw_s5_fteid: Optional[FTeid] = None
    pgw_fteid: Optional[FTeid] = None
    #: label of the gateway set serving this bearer ("central" / MEC site)
    gateway_site: str = "central"
    active: bool = True

    def __post_init__(self) -> None:
        if not (MIN_EBI <= self.ebi <= MAX_EBI):
            raise ValueError(f"EBI must be in [{MIN_EBI},{MAX_EBI}], got {self.ebi}")
        qos_for(self.qci)   # validates the QCI

    @property
    def qos(self):
        return qos_for(self.qci)

    def matches_uplink(self, packet: Packet) -> bool:
        """Does this bearer's UL TFT claim the packet?

        A default bearer has no TFT and matches everything (it is the
        match-all fallback).
        """
        if self.default and len(self.tft) == 0:
            return True
        return self.tft.matches(packet, "uplink")

    def matches_downlink(self, packet: Packet) -> bool:
        if self.default and len(self.tft) == 0:
            return True
        return self.tft.matches(packet, "downlink")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "default" if self.default else "dedicated"
        return (f"<Bearer ebi={self.ebi} {kind} qci={self.qci} "
                f"site={self.gateway_site} ue={self.ue_ip}>")


class BearerRegistry:
    """Per-UE bearer bookkeeping with EBI allocation."""

    def __init__(self) -> None:
        self.bearers: dict[int, Bearer] = {}

    def allocate_ebi(self) -> int:
        for ebi in range(MIN_EBI, MAX_EBI + 1):
            if ebi not in self.bearers:
                return ebi
        raise RuntimeError("no free EPS bearer identities")

    def add(self, bearer: Bearer) -> None:
        if bearer.ebi in self.bearers:
            raise ValueError(f"EBI {bearer.ebi} already in use")
        self.bearers[bearer.ebi] = bearer

    def remove(self, ebi: int) -> Bearer:
        return self.bearers.pop(ebi)

    def default_bearer(self) -> Optional[Bearer]:
        for bearer in self.bearers.values():
            if bearer.default:
                return bearer
        return None

    def classify_uplink(self, packet: Packet) -> Optional[Bearer]:
        """UL TFT evaluation: dedicated bearers first, default last."""
        dedicated = [b for b in self.bearers.values()
                     if not b.default and b.active]
        for bearer in dedicated:
            if bearer.matches_uplink(packet):
                return bearer
        default = self.default_bearer()
        if default is not None and default.active:
            return default
        return None

    def classify_downlink(self, packet: Packet) -> Optional[Bearer]:
        dedicated = [b for b in self.bearers.values()
                     if not b.default and b.active]
        for bearer in dedicated:
            if bearer.matches_downlink(packet):
                return bearer
        default = self.default_bearer()
        if default is not None and default.active:
            return default
        return None

    def __len__(self) -> int:
        return len(self.bearers)

    def __iter__(self):
        return iter(self.bearers.values())
