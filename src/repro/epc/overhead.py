"""Control-plane overhead accounting.

The paper argues (Section 4) that always recreating a dedicated MEC
bearer alongside the default bearer is expensive: 15 control messages
(2914 bytes) per release+re-establish, i.e. ~2.58 MB/day/device at the
observed 929 bearer events/day, and up to ~20 MB/day in the worst case of
one event per LTE radio promotion (7200/day).  The :class:`ControlLedger`
records every control message a procedure emits so those numbers can be
re-derived rather than asserted.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.epc.messages import ControlMessage

#: Bearer re-creations per device per day driven by popular-app traffic
#: patterns (Aucinas et al., CoNEXT'13, as cited by the paper).
APP_DRIVEN_EVENTS_PER_DAY = 929

#: Worst case: one re-creation per LTE radio promotion event.
PROMOTION_EVENTS_PER_DAY = 7200

#: LTE RRC inactivity timeout before bearers are torn down (seconds).
LTE_IDLE_TIMEOUT = 11.576


@dataclass
class ProtocolSummary:
    messages: int = 0
    bytes: int = 0


class ControlLedger:
    """Accumulates control messages; answers count/byte queries."""

    def __init__(self) -> None:
        self.messages: list[ControlMessage] = []

    def record(self, message: ControlMessage) -> None:
        self.messages.append(message)

    def clear(self) -> None:
        self.messages.clear()

    @property
    def total_messages(self) -> int:
        return len(self.messages)

    @property
    def total_bytes(self) -> int:
        return sum(m.size for m in self.messages)

    def by_protocol(self) -> dict[str, ProtocolSummary]:
        out: dict[str, ProtocolSummary] = defaultdict(ProtocolSummary)
        for message in self.messages:
            summary = out[message.protocol]
            summary.messages += 1
            summary.bytes += message.size
        return dict(out)

    def slice_since(self, index: int) -> "ControlLedger":
        """A ledger view of messages recorded after position ``index``."""
        view = ControlLedger()
        view.messages = self.messages[index:]
        return view

    def __len__(self) -> int:
        return len(self.messages)


def daily_overhead_bytes(bytes_per_event: int, events_per_day: int) -> int:
    """Daily control overhead in bytes for a bearer-management policy."""
    return bytes_per_event * events_per_day


def daily_overhead_mb(bytes_per_event: int, events_per_day: int) -> float:
    """Daily overhead in MiB (the unit the paper's 2.58/20 MB figures use)."""
    return daily_overhead_bytes(bytes_per_event, events_per_day) / (1024 ** 2)
