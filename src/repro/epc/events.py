"""Typed control- and data-plane events published on the hook bus.

Every EPC procedure announces its outcome as a frozen dataclass on
``sim.hooks`` (see :mod:`repro.sim.hooks`).  Probes, pagers and
application sessions subscribe to these instead of rebinding each
other's methods, which keeps observation composable: any number of
listeners can watch the same UE without a hand-rolled handler chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.bearer import Bearer
    from repro.epc.enodeb import ENodeB
    from repro.epc.ue import UEDevice
    from repro.sim.packet import Packet


@dataclass(frozen=True)
class ProcedureStarted:
    """A signalling procedure began executing as a simulator process.

    ``subject`` is the UE (or other principal) the procedure acts on;
    ``time`` is the simulated start time.  Paired with
    :class:`ProcedureCompleted` this gives tracing tools per-phase
    visibility into concurrent control-plane activity.
    """

    name: str
    subject: Any
    time: float


@dataclass(frozen=True)
class ProcedureCompleted:
    """A signalling procedure finished; ``result`` carries its
    messages and measured elapsed simulated time."""

    name: str
    subject: Any
    result: Any


@dataclass(frozen=True)
class UeIpAssigned:
    """A PGW-C allocated an IP for a UE during attach.

    Emitted *before* bearer/tunnel setup so subscribers (e.g. the
    network fabric registering the UE's radio port) can react while the
    attach procedure is still wiring the data path.
    """

    ue: "UEDevice"
    address: str


@dataclass(frozen=True)
class UeAttached:
    """The attach procedure completed; default bearer is active."""

    ue: "UEDevice"
    enb: "ENodeB"
    result: Any


@dataclass(frozen=True)
class BearerActivated:
    """A dedicated bearer finished activating."""

    ue: "UEDevice"
    bearer: "Bearer"
    result: Any


@dataclass(frozen=True)
class BearerDeactivated:
    """A dedicated bearer was torn down."""

    ue: "UEDevice"
    ebi: int
    result: Any


@dataclass(frozen=True)
class HandoverCompleted:
    """X2 or S1 handover finished; the UE is served by ``target``."""

    ue: "UEDevice"
    source: "ENodeB"
    target: "ENodeB"
    result: Any


@dataclass(frozen=True)
class UeReleasedToIdle:
    """The UE's RRC connection was released (S1 release)."""

    ue: "UEDevice"
    result: Any


@dataclass(frozen=True)
class ServiceRequestCompleted:
    """An idle UE re-established its radio connection."""

    ue: "UEDevice"
    result: Any


@dataclass(frozen=True)
class DownlinkDelivered:
    """A packet reached a UE over the radio interface."""

    ue: "UEDevice"
    packet: "Packet"
