"""Identifier allocation: IMSIs, IP pools, GTP tunnel endpoints.

Every GTP-U tunnel segment is identified by a Tunnel Endpoint Identifier
(TEID) that is meaningful only to the node that allocated it; a
Fully-Qualified TEID (F-TEID) pairs the TEID with the IP address of the
node terminating the tunnel.  Section 5.4 of the paper hinges on F-TEIDs:
the GW-Cs place the *local* (edge) GW-U addresses in the Create Bearer
messages, which is what steers the dedicated bearer's data plane onto the
MEC-resident switches.
"""

from __future__ import annotations

import ipaddress
import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class FTeid:
    """Fully-Qualified Tunnel Endpoint Identifier (TEID + node address)."""

    teid: int
    address: str

    def __str__(self) -> str:
        return f"{self.address}/teid=0x{self.teid:x}"


class TeidAllocator:
    """Allocates unique TEIDs for one tunnel-terminating node."""

    def __init__(self, start: int = 0x1000) -> None:
        self._counter = itertools.count(start)
        self._released: list[int] = []
        self.allocated: set[int] = set()

    def allocate(self) -> int:
        teid = self._released.pop() if self._released else next(self._counter)
        self.allocated.add(teid)
        return teid

    def release(self, teid: int) -> None:
        if teid not in self.allocated:
            raise KeyError(f"TEID 0x{teid:x} is not allocated")
        self.allocated.remove(teid)
        self._released.append(teid)


class ImsiAllocator:
    """Allocates IMSIs under a PLMN (MCC+MNC) prefix."""

    def __init__(self, mcc: str = "310", mnc: str = "410") -> None:
        if not (mcc.isdigit() and len(mcc) == 3):
            raise ValueError("MCC must be 3 digits")
        if not (mnc.isdigit() and len(mnc) in (2, 3)):
            raise ValueError("MNC must be 2 or 3 digits")
        self.prefix = mcc + mnc
        self._counter = itertools.count(1)

    def allocate(self) -> str:
        msin_len = 15 - len(self.prefix)
        return self.prefix + str(next(self._counter)).zfill(msin_len)


class IpPool:
    """Sequential allocator over an IPv4 subnet (the PGW's UE pool)."""

    def __init__(self, cidr: str = "10.45.0.0/16") -> None:
        self.network = ipaddress.ip_network(cidr)
        self._hosts = self.network.hosts()
        self.allocated: set[str] = set()

    def allocate(self) -> str:
        try:
            address = str(next(self._hosts))
        except StopIteration:
            raise RuntimeError(f"IP pool {self.network} exhausted") from None
        self.allocated.add(address)
        return address

    def __contains__(self, address: str) -> bool:
        return ipaddress.ip_address(address) in self.network
