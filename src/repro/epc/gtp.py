"""GTP-U user-plane encapsulation helpers.

Data bearers are carried over GTP/UDP/IP tunnels differentiated by TEID.
Encapsulation pushes the full outer stack (GTP-U 8 B + UDP 8 B + IPv4
20 B = 36 B of tunnel overhead per packet), which the link layer charges
to serialization time -- the per-packet tunnelling tax Figure 8 exposes.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.packet import Header, Packet

GTPU_HEADER_SIZE = 8
UDP_HEADER_SIZE = 8
IPV4_HEADER_SIZE = 20

#: Total per-packet overhead of one GTP-U tunnel hop.
GTP_TUNNEL_OVERHEAD = GTPU_HEADER_SIZE + UDP_HEADER_SIZE + IPV4_HEADER_SIZE

#: Standard GTP-U port.
GTPU_PORT = 2152


def gtp_encapsulate(packet: Packet, teid: int, src: str, dst: str) -> Packet:
    """Push a GTP-U/UDP/IPv4 stack onto a packet (mutates and returns it)."""
    packet.push_header(Header("GTP-U", GTPU_HEADER_SIZE, {"teid": teid}))
    packet.push_header(Header("UDP", UDP_HEADER_SIZE,
                              {"src_port": GTPU_PORT, "dst_port": GTPU_PORT}))
    packet.push_header(Header("IPv4", IPV4_HEADER_SIZE,
                              {"src": src, "dst": dst}))
    return packet


def gtp_decapsulate(packet: Packet) -> tuple[Packet, int]:
    """Pop one GTP-U tunnel stack; returns ``(packet, teid)``.

    Raises ``ValueError`` if the packet is not GTP-encapsulated.
    """
    packet.pop_header("IPv4")
    packet.pop_header("UDP")
    gtp = packet.pop_header("GTP-U")
    return packet, gtp["teid"]


def gtp_teid(packet: Packet) -> Optional[int]:
    """Read the TEID of the (single) GTP-U header, without mutating."""
    header = packet.find_header("GTP-U")
    return None if header is None else header["teid"]


def is_gtp(packet: Packet) -> bool:
    return packet.find_header("GTP-U") is not None
