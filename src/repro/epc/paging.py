"""Downlink paging for idle UEs.

The paper's background section notes the SGW "contains buffers for
paging functionality": when downlink data arrives for a UE whose radio
connection was released, the SGW buffers it, notifies the MME, the MME
pages the UE through its last-known eNodeB, the UE performs a service
request (re-establishing the bearers), and the buffered packets are
flushed down the re-installed path.

:class:`PagingManager` implements that loop by subscribing to the
:class:`~repro.sdn.events.TableMiss` events SGW-Us publish on the hook
bus: once a UE's downlink flow rules are removed at release, downlink
packets miss the flow table and the miss event lands here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.epc import messages as m
from repro.epc.messages import MessageType
from repro.epc.signalling import SignallingTimeout
from repro.sdn.events import TableMiss
from repro.sim.hooks import Subscription

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.procedures import EPCControlPlane
    from repro.sim.packet import Packet

PAGING_MESSAGE = MessageType("SCTP", "Paging", 96)
PAGING_RRC = MessageType("RRC", "Paging(PCCH)", 40)

#: Per-UE buffer limit (packets), mirroring a small SGW paging buffer.
DEFAULT_BUFFER_PACKETS = 64

#: Delay between the page going out and the UE's service request
#: completing (paging cycle + random access), seconds.
DEFAULT_PAGING_DELAY = 0.15


@dataclass
class _PendingPage:
    packets: list = field(default_factory=list)   # (packet, switch) pairs
    page_sent: bool = False


class PagingManager:
    """Buffers downlink traffic for idle UEs and pages them."""

    def __init__(self, control_plane: "EPCControlPlane",
                 buffer_packets: int = DEFAULT_BUFFER_PACKETS,
                 paging_delay: float = DEFAULT_PAGING_DELAY) -> None:
        self.control_plane = control_plane
        self.buffer_packets = buffer_packets
        self.paging_delay = paging_delay
        self._pending: dict[str, _PendingPage] = {}
        self.pages_sent = 0
        self.pages_abandoned = 0
        self.packets_buffered = 0
        self.packets_dropped = 0
        self._ues_by_ip: dict[str, object] = {}
        self._sgw_u_ids: set[int] = set()
        self._subscription: Optional[Subscription] = \
            control_plane.sim.hooks.on(TableMiss, self._on_table_miss)

    # -- wiring -----------------------------------------------------------

    def track(self, ue) -> None:
        """Register a UE so misses on its IP can be attributed."""
        self._ues_by_ip[ue.ip] = ue

    def attach_to_site(self, site) -> None:
        """Start buffering for table misses at the site's SGW-U."""
        self._sgw_u_ids.add(id(site.sgw_u))

    def close(self) -> None:
        """Stop observing table misses.  Idempotent."""
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None

    # -- the paging loop ------------------------------------------------------

    def _on_table_miss(self, event: TableMiss) -> None:
        if id(event.switch) in self._sgw_u_ids:
            self._on_miss(event.packet, event.switch)

    def _on_miss(self, packet: "Packet", switch) -> None:
        ue = self._ues_by_ip.get(packet.dst)
        if ue is None or ue.rrc_connected:
            return      # not ours / not an idle-UE miss
        pending = self._pending.setdefault(ue.ip, _PendingPage())
        if len(pending.packets) >= self.buffer_packets:
            self.packets_dropped += 1
            return
        pending.packets.append((packet, switch))
        self.packets_buffered += 1
        if not pending.page_sent:
            pending.page_sent = True
            self._page(ue)

    def _page(self, ue) -> None:
        self.pages_sent += 1
        self.control_plane.sim.spawn(self._page_proc(ue),
                                     name=f"page:{ue.name}")

    def _page_proc(self, ue):
        """The paging choreography as a simulator process: DDN to the
        MME, page via the last-known eNodeB, then the UE's service
        request after the paging cycle.

        Page messages are retransmitted per the control plane's retry
        policy; if one still times out the page is *abandoned* (the
        buffered packets stay pending, page_sent resets, so a later
        downlink miss re-pages) rather than crashing the loop.
        """
        cp = self.control_plane
        fab = cp.fabric
        context = cp.mme.context(ue.imsi)
        try:
            policy = cp.retry_policy
            yield fab.send_reliable(m.DOWNLINK_DATA_NOTIFICATION, "sgw-c",
                                    cp.mme.name, policy=policy)
            yield fab.send_reliable(m.DOWNLINK_DATA_NOTIFICATION_ACK,
                                    cp.mme.name, "sgw-c", policy=policy)
            yield fab.send_reliable(PAGING_MESSAGE, cp.mme.name,
                                    context.enb.name, policy=policy)
            yield fab.send_reliable(PAGING_RRC, context.enb.name, ue.name,
                                    policy=policy)
        except SignallingTimeout:
            self.pages_abandoned += 1
            pending = self._pending.get(ue.ip)
            if pending is not None:
                pending.page_sent = False
            return
        yield self.paging_delay      # paging cycle + random access
        if not ue.rrc_connected:
            ue.rrc_connected = True
            ue.promotions += 1
            yield cp.service_request_async(ue)
        self._flush(ue)

    def _flush(self, ue) -> None:
        """Re-offer the buffered packets to the SGW-U that punted them,
        now that its S1 downlink rules are back."""
        pending = self._pending.pop(ue.ip, None)
        if pending is None:
            return
        for packet, switch in pending.packets:
            switch.on_receive(packet, link=None)
