"""The signalling fabric: control messages as simulated traffic.

The paper's Section 4 argument is that EPC signalling *shares the
network with data*: release/re-establish cycles cost real messages on
real transports.  This module models those transports so control
procedures (see :mod:`repro.epc.procedures`) pay measured, load-
dependent latency instead of a fixed per-hop constant:

* each *channel* is a :class:`~repro.sim.link.Link` with propagation
  delay, finite bandwidth and a queue -- concurrent procedures sharing
  a channel contend exactly like data packets do;
* shared channels model the real topology: one RRC channel per cell
  (every UE in the cell serialises its air-interface signalling on
  it), one S1-MME SCTP association per eNodeB, one S11 and one S5-C
  GTP-C path, Gx/Rx Diameter legs and one OpenFlow channel per
  switch;
* a :class:`ControlMessage` is stamped and recorded in the
  :class:`~repro.epc.overhead.ControlLedger` at *delivery* time, so
  ledger timestamps are the times the messages actually arrived.

:meth:`SignallingFabric.send` returns a
:class:`~repro.sim.engine.Future` that resolves to the delivered
message; procedure generators yield it to advance hop by hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.epc.messages import ControlMessage, MessageType
from repro.epc.overhead import ControlLedger
from repro.sim.engine import Future
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ChannelSpec:
    """Transport parameters for one signalling channel.

    ``delay`` is the one-way propagation delay (seconds), ``bandwidth``
    the serialisation rate (bits/second) and ``queue_bytes`` the
    per-direction buffer.  Signalling transports are reliable, so the
    default buffer is deep enough that messages queue rather than drop.
    """

    delay: float
    bandwidth: float
    queue_bytes: int = 2_000_000


#: Default transport parameters by protocol, calibrated so a lone
#: procedure's latency lands where the old per-hop constants put it,
#: while concurrent procedures now contend for the shared channels.
DEFAULT_TRANSPORTS: dict[str, ChannelSpec] = {
    "RRC": ChannelSpec(delay=0.008, bandwidth=1e6),       # air interface
    "SCTP": ChannelSpec(delay=0.0015, bandwidth=20e6),    # S1-MME
    "GTPv2": ChannelSpec(delay=0.0015, bandwidth=20e6),   # S11 / S5-C
    "Diameter": ChannelSpec(delay=0.0015, bandwidth=20e6),  # Gx / Rx
    "OpenFlow": ChannelSpec(delay=0.001, bandwidth=100e6),  # controller
    "X2AP": ChannelSpec(delay=0.002, bandwidth=50e6),     # eNB <-> eNB
}

#: Spec used for messages whose protocol has no registered transport.
FALLBACK_SPEC = ChannelSpec(delay=0.0015, bandwidth=20e6)


class _ChannelEnd(Node):
    """One endpoint of a signalling channel; hands deliveries back to
    the fabric."""

    def __init__(self, sim: "Simulator", name: str,
                 fabric: "SignallingFabric") -> None:
        super().__init__(sim, name)
        self._fabric = fabric

    def on_receive(self, packet: Packet, link: Optional[Link]) -> None:
        self._fabric._deliver(packet)


class SignallingChannel:
    """A shared duplex transport between two *sides* of parties.

    Side ``a`` and side ``b`` each map onto one link endpoint; any
    number of named parties may sit on a side (all UEs of a cell share
    the RRC channel's UE side), which is what creates cross-procedure
    contention under concurrent signalling load.
    """

    def __init__(self, sim: "Simulator", fabric: "SignallingFabric",
                 channel_id: str, protocol: str, spec: ChannelSpec) -> None:
        self.channel_id = channel_id
        self.protocol = protocol
        self.spec = spec
        self.ends = {
            "a": _ChannelEnd(sim, f"{channel_id}.a", fabric),
            "b": _ChannelEnd(sim, f"{channel_id}.b", fabric),
        }
        self.parties: dict[str, set[str]] = {"a": set(), "b": set()}
        self.link = Link(sim, f"sig.{channel_id}", bandwidth=spec.bandwidth,
                         delay=spec.delay, queue_bytes=spec.queue_bytes)
        self.ends["a"].attach("peer", self.link)
        self.ends["b"].attach("peer", self.link)

    def stats(self) -> dict:
        """Per-direction transmit/queue counters (a->b and b->a)."""
        return {"a": self.link.stats(self.ends["a"]),
                "b": self.link.stats(self.ends["b"])}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SignallingChannel {self.channel_id} {self.protocol} "
                f"{sorted(self.parties['a'])}<->{sorted(self.parties['b'])}>")


class SignallingFabric:
    """Routes control messages between named parties over channels.

    The network builder opens the topologically meaningful channels
    (per-cell RRC, per-eNodeB S1-MME, S11, S5-C, Gx, Rx, per-switch
    OpenFlow); unknown sender/receiver pairs fall back to a lazily
    created ad-hoc channel with that protocol's default spec, so a
    procedure can always make progress.
    """

    def __init__(self, sim: "Simulator", ledger: ControlLedger,
                 specs: Optional[dict[str, ChannelSpec]] = None) -> None:
        self.sim = sim
        self.ledger = ledger
        self.specs = dict(DEFAULT_TRANSPORTS)
        if specs:
            self.specs.update(specs)
        self.channels: dict[str, SignallingChannel] = {}
        self.messages_sent = 0
        self._routes: dict[tuple[str, str], tuple[SignallingChannel, str]] = {}
        self._handlers: dict[str, Callable[[ControlMessage], None]] = {}

    # -- topology -----------------------------------------------------------

    def spec_for(self, protocol: str) -> ChannelSpec:
        return self.specs.get(protocol, FALLBACK_SPEC)

    def open_channel(self, channel_id: str, protocol: str,
                     a_parties: Iterable[str] = (),
                     b_parties: Iterable[str] = ()) -> SignallingChannel:
        """Create (or fetch) a channel and route its parties over it."""
        channel = self.channels.get(channel_id)
        if channel is None:
            channel = SignallingChannel(self.sim, self, channel_id,
                                        protocol, self.spec_for(protocol))
            self.channels[channel_id] = channel
        for name in a_parties:
            self.add_party(channel_id, name, side="a")
        for name in b_parties:
            self.add_party(channel_id, name, side="b")
        return channel

    def add_party(self, channel_id: str, name: str, side: str = "b") -> None:
        """Put ``name`` on one side of a channel and (re)route it.

        Routes to the parties on the *other* side are overwritten, which
        is how a UE moves to its target cell's RRC channel at handover.
        """
        channel = self.channels[channel_id]
        other = "a" if side == "b" else "b"
        channel.parties[side].add(name)
        for peer in channel.parties[other]:
            self._routes[(name, peer)] = (channel, side)
            self._routes[(peer, name)] = (channel, other)

    def register_handler(self, party: str,
                         fn: Callable[[ControlMessage], None]) -> None:
        """Deliver every message addressed to ``party`` to ``fn`` too."""
        self._handlers[party] = fn

    def _adhoc(self, protocol: str, sender: str,
               receiver: str) -> tuple[SignallingChannel, str]:
        lo, hi = sorted((sender, receiver))
        channel_id = f"adhoc.{protocol}.{lo}.{hi}"
        self.open_channel(channel_id, protocol, [lo], [hi])
        return self._routes[(sender, receiver)]

    # -- the data path ------------------------------------------------------

    def send(self, mtype: MessageType, sender: str, receiver: str,
             on_deliver: Optional[Callable[[ControlMessage], None]] = None,
             **fields) -> Future:
        """Transmit one control message; resolves at delivery.

        The returned future's value is the delivered
        :class:`ControlMessage` (timestamped with its arrival time and
        already recorded in the ledger).  ``on_deliver`` runs at
        delivery before the future resolves -- the SDN controller uses
        it to apply a flow-mod to the switch the moment it arrives.
        """
        route = self._routes.get((sender, receiver))
        if route is None:
            route = self._adhoc(mtype.protocol, sender, receiver)
        channel, side = route
        message = ControlMessage(mtype, sender, receiver, fields)
        future = Future(self.sim)
        packet = Packet(src=sender, dst=receiver, size=mtype.size,
                        protocol=mtype.protocol,
                        created_at=self.sim.now,
                        meta={"message": message, "future": future,
                              "on_deliver": on_deliver})
        self.messages_sent += 1
        channel.ends[side].send("peer", packet)
        return future

    def _deliver(self, packet: Packet) -> None:
        message: ControlMessage = packet.meta["message"]
        message.timestamp = self.sim.now
        self.ledger.record(message)
        handler = self._handlers.get(message.receiver)
        if handler is not None:
            handler(message)
        on_deliver = packet.meta.get("on_deliver")
        if on_deliver is not None:
            on_deliver(message)
        packet.meta["future"].resolve(message)
