"""The signalling fabric: control messages as simulated traffic.

The paper's Section 4 argument is that EPC signalling *shares the
network with data*: release/re-establish cycles cost real messages on
real transports.  This module models those transports so control
procedures (see :mod:`repro.epc.procedures`) pay measured, load-
dependent latency instead of a fixed per-hop constant:

* each *channel* is a :class:`~repro.sim.link.Link` with propagation
  delay, finite bandwidth and a queue -- concurrent procedures sharing
  a channel contend exactly like data packets do;
* shared channels model the real topology: one RRC channel per cell
  (every UE in the cell serialises its air-interface signalling on
  it), one S1-MME SCTP association per eNodeB, one S11 and one S5-C
  GTP-C path, Gx/Rx Diameter legs and one OpenFlow channel per
  switch;
* a :class:`ControlMessage` is stamped and recorded in the
  :class:`~repro.epc.overhead.ControlLedger` at *delivery* time, so
  ledger timestamps are the times the messages actually arrived.

:meth:`SignallingFabric.send` returns a
:class:`~repro.sim.engine.Future` that resolves to the delivered
message; procedure generators yield it to advance hop by hop.

Reliability.  Signalling transports are lossless by default, but the
fault layer (:mod:`repro.faults`) can perturb channels (probabilistic
loss / delay spikes) and mark parties down.  :meth:`SignallingFabric.
send_reliable` layers 3GPP-style retransmission on top of
:meth:`~SignallingFabric.send`: each attempt arms a per-protocol timer
(see :class:`RetryPolicy`), expiry retransmits with exponential
backoff, and exhausting the retry cap rejects the returned future with
:class:`SignallingTimeout` so the waiting procedure terminates with a
``timeout`` outcome instead of deadlocking.  Duplicate deliveries
(a retransmission racing a delayed original) are suppressed, which is
what makes retried SDN flow-mods idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.epc.messages import ControlMessage, MessageType
from repro.epc.overhead import ControlLedger
from repro.sim.engine import Future
from repro.sim.hooks import PacketDropped
from repro.sim.link import Link
from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class ChannelSpec:
    """Transport parameters for one signalling channel.

    ``delay`` is the one-way propagation delay (seconds), ``bandwidth``
    the serialisation rate (bits/second) and ``queue_bytes`` the
    per-direction buffer.  Signalling transports are reliable, so the
    default buffer is deep enough that messages queue rather than drop.
    """

    delay: float
    bandwidth: float
    queue_bytes: int = 2_000_000


#: Default transport parameters by protocol, calibrated so a lone
#: procedure's latency lands where the old per-hop constants put it,
#: while concurrent procedures now contend for the shared channels.
DEFAULT_TRANSPORTS: dict[str, ChannelSpec] = {
    "RRC": ChannelSpec(delay=0.008, bandwidth=1e6),       # air interface
    "SCTP": ChannelSpec(delay=0.0015, bandwidth=20e6),    # S1-MME
    "GTPv2": ChannelSpec(delay=0.0015, bandwidth=20e6),   # S11 / S5-C
    "Diameter": ChannelSpec(delay=0.0015, bandwidth=20e6),  # Gx / Rx
    "OpenFlow": ChannelSpec(delay=0.001, bandwidth=100e6),  # controller
    "X2AP": ChannelSpec(delay=0.002, bandwidth=50e6),     # eNB <-> eNB
}

#: Spec used for messages whose protocol has no registered transport.
FALLBACK_SPEC = ChannelSpec(delay=0.0015, bandwidth=20e6)


@dataclass
class RetryPolicy:
    """Per-protocol retransmission timers for reliable signalling.

    Timer values are seconds and map *protocols* (``"RRC"``,
    ``"GTPv2"``, ...) to their initial retransmission timeout; attempt
    ``n`` waits ``timer * backoff**(n-1)``.  With ``enabled=False`` a
    single attempt is made but its timer still arms, so an undelivered
    message surfaces as a :class:`SignallingTimeout` (a terminal
    ``timeout`` outcome) rather than a simulator deadlock.

    Build one from :meth:`repro.core.config.ResilienceConfig.policy`.
    """

    enabled: bool = True
    timers: dict[str, float] = field(default_factory=dict)
    default_timer: float = 2.0
    backoff: float = 2.0
    max_retries: int = 4

    def timer_for(self, protocol: str) -> float:
        """Initial retransmission timeout for ``protocol`` (seconds)."""
        return self.timers.get(protocol, self.default_timer)

    @property
    def max_attempts(self) -> int:
        """Total transmission attempts (1 when retries are disabled)."""
        return (self.max_retries if self.enabled else 0) + 1


class SignallingTimeout(Exception):
    """A reliable transfer exhausted its retransmission attempts.

    Raised into the process waiting on the transfer's future.  Carries
    the procedure's telemetry object (``result``) when one was supplied
    to :meth:`SignallingFabric.send_reliable`, so the guard wrapping a
    procedure can finalise that result with ``outcome="timeout"``.
    """

    def __init__(self, mtype: MessageType, sender: str, receiver: str,
                 attempts: int, result: Any = None) -> None:
        super().__init__(f"{mtype.name} {sender}->{receiver} "
                         f"undelivered after {attempts} attempt(s)")
        self.mtype = mtype
        self.sender = sender
        self.receiver = receiver
        self.attempts = attempts
        self.result = result


@dataclass
class ChannelPerturbation:
    """An injected impairment applied to deliveries on a channel.

    ``kind`` is ``"loss"`` (drop with probability ``rate``) or
    ``"delay"`` (add ``extra_delay`` seconds with probability
    ``probability``).  Draws come from ``rng``, a named
    :class:`~repro.sim.context.SimContext` stream supplied by the
    fault injector, so perturbed runs stay deterministic per seed.
    """

    kind: str
    rate: float = 0.0
    probability: float = 0.0
    extra_delay: float = 0.0
    rng: Any = None

    def draw(self) -> Optional[str]:
        """Return ``"drop"``/``"delay"`` when the impairment fires."""
        if self.kind == "loss":
            if self.rate > 0 and self.rng.random() < self.rate:
                return "drop"
        elif self.kind == "delay":
            if self.probability > 0 and self.rng.random() < self.probability:
                return "delay"
        return None


class _ChannelEnd(Node):
    """One endpoint of a signalling channel; hands deliveries back to
    the fabric."""

    def __init__(self, sim: "Simulator", name: str,
                 fabric: "SignallingFabric") -> None:
        super().__init__(sim, name)
        self._fabric = fabric

    def on_receive(self, packet: Packet, link: Optional[Link]) -> None:
        self._fabric._deliver(packet)


class SignallingChannel:
    """A shared duplex transport between two *sides* of parties.

    Side ``a`` and side ``b`` each map onto one link endpoint; any
    number of named parties may sit on a side (all UEs of a cell share
    the RRC channel's UE side), which is what creates cross-procedure
    contention under concurrent signalling load.
    """

    def __init__(self, sim: "Simulator", fabric: "SignallingFabric",
                 channel_id: str, protocol: str, spec: ChannelSpec) -> None:
        self.channel_id = channel_id
        self.protocol = protocol
        self.spec = spec
        self.ends = {
            "a": _ChannelEnd(sim, f"{channel_id}.a", fabric),
            "b": _ChannelEnd(sim, f"{channel_id}.b", fabric),
        }
        self.parties: dict[str, set[str]] = {"a": set(), "b": set()}
        self.perturbations: list[ChannelPerturbation] = []
        self.link = Link(sim, f"sig.{channel_id}", bandwidth=spec.bandwidth,
                         delay=spec.delay, queue_bytes=spec.queue_bytes)
        self.ends["a"].attach("peer", self.link)
        self.ends["b"].attach("peer", self.link)

    def stats(self) -> dict:
        """Per-direction transmit/queue counters (a->b and b->a)."""
        return {"a": self.link.stats(self.ends["a"]),
                "b": self.link.stats(self.ends["b"])}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SignallingChannel {self.channel_id} {self.protocol} "
                f"{sorted(self.parties['a'])}<->{sorted(self.parties['b'])}>")


class SignallingFabric:
    """Routes control messages between named parties over channels.

    The network builder opens the topologically meaningful channels
    (per-cell RRC, per-eNodeB S1-MME, S11, S5-C, Gx, Rx, per-switch
    OpenFlow); unknown sender/receiver pairs fall back to a lazily
    created ad-hoc channel with that protocol's default spec, so a
    procedure can always make progress.
    """

    def __init__(self, sim: "Simulator", ledger: ControlLedger,
                 specs: Optional[dict[str, ChannelSpec]] = None) -> None:
        self.sim = sim
        self.ledger = ledger
        self.specs = dict(DEFAULT_TRANSPORTS)
        if specs:
            self.specs.update(specs)
        self.channels: dict[str, SignallingChannel] = {}
        self.messages_sent = 0
        self.retransmissions = 0
        self.duplicates = 0
        self.drops: dict[str, int] = {}
        self.down_parties: set[str] = set()
        self._routes: dict[tuple[str, str], tuple[SignallingChannel, str]] = {}
        self._handlers: dict[str, Callable[[ControlMessage], None]] = {}
        self._perturbations: list[tuple[str, ChannelPerturbation]] = []

    # -- topology -----------------------------------------------------------

    def spec_for(self, protocol: str) -> ChannelSpec:
        return self.specs.get(protocol, FALLBACK_SPEC)

    def open_channel(self, channel_id: str, protocol: str,
                     a_parties: Iterable[str] = (),
                     b_parties: Iterable[str] = ()) -> SignallingChannel:
        """Create (or fetch) a channel and route its parties over it."""
        channel = self.channels.get(channel_id)
        if channel is None:
            channel = SignallingChannel(self.sim, self, channel_id,
                                        protocol, self.spec_for(protocol))
            self.channels[channel_id] = channel
            for pattern, pert in self._perturbations:
                if fnmatch(channel_id, pattern):
                    channel.perturbations.append(pert)
        for name in a_parties:
            self.add_party(channel_id, name, side="a")
        for name in b_parties:
            self.add_party(channel_id, name, side="b")
        return channel

    def add_party(self, channel_id: str, name: str, side: str = "b") -> None:
        """Put ``name`` on one side of a channel and (re)route it.

        Routes to the parties on the *other* side are overwritten, which
        is how a UE moves to its target cell's RRC channel at handover.
        """
        channel = self.channels[channel_id]
        other = "a" if side == "b" else "b"
        channel.parties[side].add(name)
        for peer in channel.parties[other]:
            self._routes[(name, peer)] = (channel, side)
            self._routes[(peer, name)] = (channel, other)

    def register_handler(self, party: str,
                         fn: Callable[[ControlMessage], None]) -> None:
        """Deliver every message addressed to ``party`` to ``fn`` too."""
        self._handlers[party] = fn

    def _adhoc(self, protocol: str, sender: str,
               receiver: str) -> tuple[SignallingChannel, str]:
        lo, hi = sorted((sender, receiver))
        channel_id = f"adhoc.{protocol}.{lo}.{hi}"
        self.open_channel(channel_id, protocol, [lo], [hi])
        return self._routes[(sender, receiver)]

    # -- fault hooks --------------------------------------------------------

    def add_perturbation(self, pattern: str,
                         pert: ChannelPerturbation) -> tuple:
        """Attach an impairment to every channel matching ``pattern``.

        ``pattern`` is an :func:`fnmatch.fnmatch` glob over channel ids
        (``"*"`` hits everything, ``"s11"`` just the S11 path); the
        impairment also applies to channels opened later.  Returns a
        handle for :meth:`remove_perturbation`.
        """
        handle = (pattern, pert)
        self._perturbations.append(handle)
        for channel_id, channel in self.channels.items():
            if fnmatch(channel_id, pattern):
                channel.perturbations.append(pert)
        return handle

    def remove_perturbation(self, handle: tuple) -> None:
        """Detach an impairment previously added.  Idempotent."""
        if handle in self._perturbations:
            self._perturbations.remove(handle)
        _, pert = handle
        for channel in self.channels.values():
            if pert in channel.perturbations:
                channel.perturbations.remove(pert)

    def set_party_down(self, party: str, down: bool = True) -> None:
        """Mark a party crashed: messages addressed to it are dropped."""
        if down:
            self.down_parties.add(party)
        else:
            self.down_parties.discard(party)

    # -- the data path ------------------------------------------------------

    def send(self, mtype: MessageType, sender: str, receiver: str,
             on_deliver: Optional[Callable[[ControlMessage], None]] = None,
             _transfer: Optional["_ReliableTransfer"] = None,
             **fields) -> Future:
        """Transmit one control message; resolves at delivery.

        The returned future's value is the delivered
        :class:`ControlMessage` (timestamped with its arrival time and
        already recorded in the ledger).  ``on_deliver`` runs at
        delivery before the future resolves -- the SDN controller uses
        it to apply a flow-mod to the switch the moment it arrives.

        Plain ``send`` assumes lossless transports: if the fault layer
        drops the message the future never resolves.  Use
        :meth:`send_reliable` when the run may inject faults.
        """
        route = self._routes.get((sender, receiver))
        if route is None:
            route = self._adhoc(mtype.protocol, sender, receiver)
        channel, side = route
        message = ControlMessage(mtype, sender, receiver, fields)
        future = Future(self.sim)
        packet = Packet(src=sender, dst=receiver, size=mtype.size,
                        protocol=mtype.protocol,
                        created_at=self.sim.now,
                        meta={"message": message, "future": future,
                              "on_deliver": on_deliver,
                              "channel": channel,
                              "sender_end": channel.ends[side],
                              "transfer": _transfer})
        self.messages_sent += 1
        channel.ends[side].send("peer", packet)
        return future

    def send_reliable(self, mtype: MessageType, sender: str, receiver: str,
                      policy: Optional[RetryPolicy] = None,
                      on_deliver: Optional[Callable[[ControlMessage],
                                                    None]] = None,
                      telemetry: Any = None, **fields) -> Future:
        """Transmit with retransmission timers; always terminates.

        Resolves to the first delivered copy of the message; rejects
        with :class:`SignallingTimeout` once ``policy.max_attempts``
        transmissions have all timed out.  ``telemetry`` (typically a
        :class:`~repro.epc.procedures.ProcedureResult`) accumulates
        ``retries`` / ``timer_expiries`` counts and rides along in the
        timeout exception.  With ``policy=None`` this degrades to the
        legacy unguarded :meth:`send`.
        """
        if policy is None:
            return self.send(mtype, sender, receiver,
                             on_deliver=on_deliver, **fields)
        transfer = _ReliableTransfer(self, mtype, sender, receiver,
                                     policy, on_deliver, telemetry, fields)
        transfer.send_attempt()
        return transfer.future

    def _drop(self, packet: Packet, channel: Optional[SignallingChannel],
              reason: str) -> None:
        self.drops[reason] = self.drops.get(reason, 0) + 1
        hooks = self.sim.hooks
        if hooks.has(PacketDropped):
            hooks.emit(PacketDropped(
                link=channel.link if channel is not None else None,
                packet=packet, sender=packet.meta.get("sender_end"),
                reason=reason))

    def _deliver(self, packet: Packet) -> None:
        channel: Optional[SignallingChannel] = packet.meta.get("channel")
        if (channel is not None and channel.perturbations
                and not packet.meta.get("perturbed")):
            for pert in channel.perturbations:
                outcome = pert.draw()
                if outcome == "drop":
                    self._drop(packet, channel, "injected-loss")
                    return
                if outcome == "delay":
                    # re-deliver once after the spike; flagged so the
                    # delayed copy is not perturbed again
                    packet.meta["perturbed"] = True
                    self.sim.schedule(pert.extra_delay, self._deliver,
                                      packet)
                    return
        message: ControlMessage = packet.meta["message"]
        if message.receiver in self.down_parties:
            self._drop(packet, channel, "entity-down")
            return
        transfer: Optional[_ReliableTransfer] = packet.meta.get("transfer")
        if transfer is not None and transfer.done:
            # a retransmission raced a delayed original: the logical
            # message was already processed exactly once
            transfer.duplicates += 1
            self.duplicates += 1
            return
        message.timestamp = self.sim.now
        self.ledger.record(message)
        handler = self._handlers.get(message.receiver)
        if handler is not None:
            handler(message)
        on_deliver = packet.meta.get("on_deliver")
        if on_deliver is not None:
            on_deliver(message)
        packet.meta["future"].resolve(message)


class _ReliableTransfer:
    """One logical message, delivered at most once over >= 1 attempts.

    Each attempt is a fresh :meth:`SignallingFabric.send` plus a timer
    event; delivery of any copy cancels the pending timer and resolves
    the outer future, expiry of the last allowed attempt rejects it.
    """

    def __init__(self, fabric: SignallingFabric, mtype: MessageType,
                 sender: str, receiver: str, policy: RetryPolicy,
                 on_deliver: Optional[Callable[[ControlMessage], None]],
                 telemetry: Any, fields: dict) -> None:
        self.fabric = fabric
        self.mtype = mtype
        self.sender = sender
        self.receiver = receiver
        self.policy = policy
        self.on_deliver = on_deliver
        self.telemetry = telemetry
        self.fields = fields
        self.future = Future(fabric.sim)
        self.attempts = 0
        self.duplicates = 0
        self.done = False
        self._timer = None

    def send_attempt(self) -> None:
        self.attempts += 1
        if self.attempts > 1:
            self.fabric.retransmissions += 1
            if self.telemetry is not None:
                self.telemetry.retries += 1
        attempt = self.fabric.send(self.mtype, self.sender, self.receiver,
                                   on_deliver=self.on_deliver,
                                   _transfer=self, **self.fields)
        attempt.add_done_callback(self._delivered)
        timeout = (self.policy.timer_for(self.mtype.protocol)
                   * self.policy.backoff ** (self.attempts - 1))
        self._timer = self.fabric.sim.schedule(timeout, self._expired)

    def _delivered(self, attempt: Future) -> None:
        if self.done:
            return
        self.done = True
        if self._timer is not None:
            self._timer.cancel()
        self.future.resolve(attempt.value)

    def _expired(self) -> None:
        if self.done:
            return
        if self.telemetry is not None:
            self.telemetry.timer_expiries += 1
        if self.attempts >= self.policy.max_attempts:
            self.done = True
            self.future.reject(SignallingTimeout(
                self.mtype, self.sender, self.receiver, self.attempts,
                result=self.telemetry))
        else:
            self.send_attempt()
