"""PCEF usage accounting and charging records.

The PGW "enforces operator-defined policies (QoS), packet filtering and
accounting" (paper Section 3).  The per-bearer flow rules installed on
the GW-Us already count packets and bytes (OpenFlow rule counters);
this module aggregates those counters into per-bearer usage records and
rates them into charging data records (CDRs) with per-QCI tariffs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.entities import GatewaySite


@dataclass
class BearerUsage:
    """Aggregated traffic counters for one bearer."""

    imsi: str
    ebi: int
    uplink_packets: int = 0
    uplink_bytes: int = 0
    downlink_packets: int = 0
    downlink_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.uplink_bytes + self.downlink_bytes


@dataclass(frozen=True)
class Tariff:
    """Price per megabyte by QCI class (operator rating table)."""

    default_per_mb: float = 0.01
    per_qci_per_mb: dict = field(default_factory=dict)

    def rate(self, qci: Optional[int], total_bytes: int) -> float:
        per_mb = self.per_qci_per_mb.get(qci, self.default_per_mb)
        return total_bytes / 1e6 * per_mb


@dataclass
class ChargingRecord:
    """One CDR: usage plus the rated charge."""

    usage: BearerUsage
    qci: Optional[int]
    charge: float


class UsageCollector:
    """Scrapes per-bearer usage from GW-U flow-rule counters.

    Rule cookies follow ``{imsi}:ebi{ebi}:{ul|dl}`` (the convention of
    :mod:`repro.epc.procedures`), which is all that is needed to map
    counters back to bearers.
    """

    def __init__(self) -> None:
        #: checkpointed counters so repeated collections are deltas
        self._seen: dict[tuple[str, str], tuple[int, int]] = {}

    @staticmethod
    def _parse_cookie(cookie: str) -> Optional[tuple[str, int, str]]:
        parts = cookie.split(":")
        if len(parts) != 3 or not parts[1].startswith("ebi"):
            return None
        try:
            return parts[0], int(parts[1][3:]), parts[2]
        except ValueError:
            return None

    def collect(self, site: "GatewaySite") -> dict[tuple[str, int],
                                                   BearerUsage]:
        """Aggregate current usage per bearer at one gateway site.

        Uplink is measured at the PGW-U (post-decap egress toward the
        SGi network); downlink at the PGW-U's ingress classification
        rule.  Only deltas since the previous collection are added, so
        calling this periodically yields interval usage.
        """
        usage: dict[tuple[str, int], BearerUsage] = {}
        for rule in site.pgw_u.table:
            parsed = self._parse_cookie(rule.cookie)
            if parsed is None:
                continue
            imsi, ebi, direction = parsed
            key = (imsi, ebi)
            record = usage.setdefault(key, BearerUsage(imsi=imsi, ebi=ebi))
            seen_key = (rule.cookie, site.name)
            prev_packets, prev_bytes = self._seen.get(seen_key, (0, 0))
            delta_packets = rule.packets - prev_packets
            delta_bytes = rule.bytes - prev_bytes
            self._seen[seen_key] = (rule.packets, rule.bytes)
            if direction == "ul":
                record.uplink_packets += delta_packets
                record.uplink_bytes += delta_bytes
            else:
                record.downlink_packets += delta_packets
                record.downlink_bytes += delta_bytes
        return usage


class ChargingFunction:
    """Rates collected usage into CDRs."""

    def __init__(self, tariff: Optional[Tariff] = None) -> None:
        self.tariff = tariff if tariff is not None else Tariff()
        self.collector = UsageCollector()
        self.records: list[ChargingRecord] = []

    def bill_site(self, site: "GatewaySite",
                  qci_by_bearer: Optional[dict[tuple[str, int], int]] = None,
                  ) -> list[ChargingRecord]:
        """Collect usage at a site and emit one CDR per active bearer."""
        qci_by_bearer = qci_by_bearer or {}
        out = []
        for key, usage in self.collector.collect(site).items():
            if usage.total_bytes == 0:
                continue
            qci = qci_by_bearer.get(key)
            record = ChargingRecord(
                usage=usage, qci=qci,
                charge=self.tariff.rate(qci, usage.total_bytes))
            out.append(record)
        self.records.extend(out)
        return out

    @property
    def total_charged(self) -> float:
        return sum(record.charge for record in self.records)
