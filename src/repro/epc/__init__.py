"""LTE/EPC substrate.

Models the mobile-network pieces ACACIA builds on: identifiers and
address pools, the 3GPP QCI QoS table, default/dedicated EPS bearers with
traffic-flow-template (TFT) classification, GTP-C/GTP-U messaging, the
control-plane entities (MME, HSS, PCRF/PCEF, split SGW-C/PGW-C), the
data-plane nodes (UE, eNodeB) and the signalling procedures (attach,
network-initiated dedicated-bearer activation, idle release and service
request, X2 handover) whose message counts/bytes reproduce the paper's
control overhead analysis (Section 4).  Optional components round out
the operator machinery: downlink paging, GBR admission control with ARP
preemption, and PCEF usage accounting.
"""

from repro.epc.admission import (AdmissionController, AdmissionError, Arp,
                                 Reservation)
from repro.epc.bearer import Bearer, PacketFilter, TrafficFlowTemplate
from repro.epc.charging import (BearerUsage, ChargingFunction,
                                ChargingRecord, Tariff, UsageCollector)
from repro.epc.events import (BearerActivated, BearerDeactivated,
                              DownlinkDelivered, HandoverCompleted,
                              ServiceRequestCompleted, UeAttached,
                              UeIpAssigned, UeReleasedToIdle)
from repro.epc.identifiers import (FTeid, ImsiAllocator, IpPool,
                                   TeidAllocator)
from repro.epc.overhead import ControlLedger, daily_overhead_bytes
from repro.epc.paging import PagingManager
from repro.epc.qos import QCI_TABLE, QosClass

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Arp",
    "Bearer",
    "BearerActivated",
    "BearerDeactivated",
    "BearerUsage",
    "ChargingFunction",
    "ChargingRecord",
    "ControlLedger",
    "DownlinkDelivered",
    "FTeid",
    "HandoverCompleted",
    "ImsiAllocator",
    "IpPool",
    "PacketFilter",
    "PagingManager",
    "QCI_TABLE",
    "QosClass",
    "Reservation",
    "ServiceRequestCompleted",
    "Tariff",
    "TeidAllocator",
    "TrafficFlowTemplate",
    "UeAttached",
    "UeIpAssigned",
    "UeReleasedToIdle",
    "UsageCollector",
    "daily_overhead_bytes",
]
