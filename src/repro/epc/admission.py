"""GBR admission control with ARP-based preemption.

Bearers with GBR QCIs (1-4) reserve guaranteed bit rate on their
serving gateway site.  The admission controller tracks the reserved
pool per site; when a request does not fit, the Allocation and
Retention Priority (ARP) rules of TS 23.203 apply: a request whose ARP
priority beats an existing preemptable bearer may evict it.

ACACIA's MEC bearers are non-GBR (QCI 7) in the paper, so admission is
an optional component -- but the machinery is needed the moment an
operator maps a CI service onto a GBR class (e.g. QCI 3 for
"real-time gaming"-grade AR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.epc.qos import qos_for


class AdmissionError(RuntimeError):
    """Raised when a GBR bearer cannot be admitted (and nothing could
    be preempted to make room)."""


@dataclass(frozen=True)
class Arp:
    """Allocation and Retention Priority (TS 23.203)."""

    priority: int = 9                   # 1 (highest) .. 15 (lowest)
    preemption_capable: bool = False    # may evict others
    preemption_vulnerable: bool = True  # may be evicted

    def __post_init__(self) -> None:
        if not (1 <= self.priority <= 15):
            raise ValueError("ARP priority must be in [1, 15]")

    def beats(self, other: "Arp") -> bool:
        """May a request with this ARP preempt a bearer with ``other``?"""
        return (self.preemption_capable and other.preemption_vulnerable
                and self.priority < other.priority)


@dataclass
class Reservation:
    """One admitted GBR reservation."""

    imsi: str
    ebi: int
    site_name: str
    gbr: float                          # bits/sec
    arp: Arp

    @property
    def key(self) -> tuple[str, int]:
        return (self.imsi, self.ebi)


@dataclass
class _SitePool:
    capacity: float
    reservations: dict[tuple[str, int], Reservation] = field(
        default_factory=dict)

    @property
    def reserved(self) -> float:
        return sum(r.gbr for r in self.reservations.values())

    @property
    def available(self) -> float:
        return self.capacity - self.reserved


@dataclass(frozen=True)
class SiteLoad:
    """Snapshot of one site's GBR pool, for operator dashboards and
    load-aware admission."""

    site_name: str
    capacity: float                 # reservable bits/sec
    reserved: float                 # bits/sec currently promised
    reservations: int               # active reservation count
    external_load: float            # 0..1 signal from outside (0 if none)

    @property
    def utilization(self) -> float:
        return self.reserved / self.capacity if self.capacity > 0 else 0.0

    def to_dict(self) -> dict:
        return {"site": self.site_name, "capacity": self.capacity,
                "reserved": self.reserved,
                "utilization": self.utilization,
                "reservations": self.reservations,
                "external_load": self.external_load}


class AdmissionController:
    """Per-site GBR pools with ARP preemption.

    Besides the bandwidth ledger, the controller can consume an
    *external load signal* -- a callable mapping site name to a 0..1
    health figure (e.g. matcher queue pressure reported by the operator
    runtime).  When the signal for a site meets
    :attr:`overload_threshold`, new GBR requests there are rejected
    outright (counted in :attr:`rejected_overload`) even if bandwidth
    is available: an overloaded MEC site should shed arrivals before it
    starts missing deadlines, not after.
    """

    def __init__(self, overload_threshold: float = 1.0) -> None:
        self._pools: dict[str, _SitePool] = {}
        self.admitted = 0
        self.rejected = 0
        self.rejected_overload = 0
        self.preempted: list[Reservation] = []
        self.overload_threshold = overload_threshold
        self._load_signal: Optional[Callable[[str], float]] = None

    # -- load signals ------------------------------------------------------

    def set_load_signal(self, fn: Optional[Callable[[str], float]],
                        threshold: Optional[float] = None) -> None:
        """Install (or clear, with ``None``) the external load signal.

        ``fn(site_name)`` must return a 0..1 load figure; sites the
        signal does not know should return 0.0.
        """
        self._load_signal = fn
        if threshold is not None:
            self.overload_threshold = threshold

    def external_load(self, site_name: str) -> float:
        if self._load_signal is None:
            return 0.0
        return float(self._load_signal(site_name))

    def site_load(self, site_name: str) -> SiteLoad:
        """Load snapshot for one registered site."""
        pool = self.pool(site_name)
        return SiteLoad(site_name=site_name, capacity=pool.capacity,
                        reserved=pool.reserved,
                        reservations=len(pool.reservations),
                        external_load=self.external_load(site_name))

    def site_loads(self) -> dict[str, SiteLoad]:
        """Load snapshots for every registered site, by name."""
        return {name: self.site_load(name) for name in sorted(self._pools)}

    def register_site(self, site_name: str, gbr_capacity: float) -> None:
        """Declare how much of a site's bandwidth is reservable."""
        if gbr_capacity <= 0:
            raise ValueError("GBR capacity must be positive")
        self._pools[site_name] = _SitePool(capacity=gbr_capacity)

    def pool(self, site_name: str) -> _SitePool:
        try:
            return self._pools[site_name]
        except KeyError:
            raise KeyError(f"no GBR pool registered for site "
                           f"{site_name!r}") from None

    # -- admission --------------------------------------------------------

    def request(self, imsi: str, ebi: int, site_name: str, qci: int,
                gbr: float, arp: Optional[Arp] = None) -> Reservation:
        """Admit a bearer, preempting lower-ARP bearers if permitted.

        Non-GBR QCIs are admitted unconditionally (no reservation).
        Returns the reservation; raises :class:`AdmissionError` when the
        pool is full and preemption cannot make room.  Preempted
        reservations are appended to :attr:`preempted` -- the caller is
        responsible for deactivating the corresponding bearers.
        """
        arp = arp if arp is not None else Arp()
        reservation = Reservation(imsi=imsi, ebi=ebi, site_name=site_name,
                                  gbr=gbr, arp=arp)
        if not qos_for(qci).is_gbr or gbr <= 0:
            self.admitted += 1
            return reservation          # non-GBR: nothing to reserve
        pool = self.pool(site_name)
        if self.external_load(site_name) >= self.overload_threshold:
            self.rejected += 1
            self.rejected_overload += 1
            raise AdmissionError(
                f"site {site_name!r} is overloaded "
                f"(load {self.external_load(site_name):.2f} >= "
                f"{self.overload_threshold:.2f}); shedding new GBR bearers")
        if gbr > pool.capacity:
            self.rejected += 1
            raise AdmissionError(
                f"GBR {gbr / 1e6:.1f} Mbps exceeds site capacity")
        while pool.available < gbr:
            victim = self._preemption_victim(pool, arp)
            if victim is None:
                self.rejected += 1
                raise AdmissionError(
                    f"site {site_name!r} GBR pool exhausted "
                    f"({pool.available / 1e6:.1f} of {gbr / 1e6:.1f} Mbps "
                    f"free) and nothing preemptable")
            del pool.reservations[victim.key]
            self.preempted.append(victim)
        pool.reservations[reservation.key] = reservation
        self.admitted += 1
        return reservation

    @staticmethod
    def _preemption_victim(pool: _SitePool,
                           requester: Arp) -> Optional[Reservation]:
        candidates = [r for r in pool.reservations.values()
                      if requester.beats(r.arp)]
        if not candidates:
            return None
        # evict the lowest-priority (numerically highest) first
        return max(candidates, key=lambda r: r.arp.priority)

    def release(self, imsi: str, ebi: int, site_name: str) -> None:
        """Free a reservation (no-op if none exists)."""
        pool = self._pools.get(site_name)
        if pool is not None:
            pool.reservations.pop((imsi, ebi), None)

    def drain_preempted(self) -> list[Reservation]:
        """Return and clear the list of preempted reservations."""
        out = self.preempted
        self.preempted = []
        return out
