"""GBR admission control with ARP-based preemption.

Bearers with GBR QCIs (1-4) reserve guaranteed bit rate on their
serving gateway site.  The admission controller tracks the reserved
pool per site; when a request does not fit, the Allocation and
Retention Priority (ARP) rules of TS 23.203 apply: a request whose ARP
priority beats an existing preemptable bearer may evict it.

ACACIA's MEC bearers are non-GBR (QCI 7) in the paper, so admission is
an optional component -- but the machinery is needed the moment an
operator maps a CI service onto a GBR class (e.g. QCI 3 for
"real-time gaming"-grade AR).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.epc.qos import qos_for


class AdmissionError(RuntimeError):
    """Raised when a GBR bearer cannot be admitted (and nothing could
    be preempted to make room)."""


@dataclass(frozen=True)
class Arp:
    """Allocation and Retention Priority (TS 23.203)."""

    priority: int = 9                   # 1 (highest) .. 15 (lowest)
    preemption_capable: bool = False    # may evict others
    preemption_vulnerable: bool = True  # may be evicted

    def __post_init__(self) -> None:
        if not (1 <= self.priority <= 15):
            raise ValueError("ARP priority must be in [1, 15]")

    def beats(self, other: "Arp") -> bool:
        """May a request with this ARP preempt a bearer with ``other``?"""
        return (self.preemption_capable and other.preemption_vulnerable
                and self.priority < other.priority)


@dataclass
class Reservation:
    """One admitted GBR reservation."""

    imsi: str
    ebi: int
    site_name: str
    gbr: float                          # bits/sec
    arp: Arp

    @property
    def key(self) -> tuple[str, int]:
        return (self.imsi, self.ebi)


@dataclass
class _SitePool:
    capacity: float
    reservations: dict[tuple[str, int], Reservation] = field(
        default_factory=dict)

    @property
    def reserved(self) -> float:
        return sum(r.gbr for r in self.reservations.values())

    @property
    def available(self) -> float:
        return self.capacity - self.reserved


class AdmissionController:
    """Per-site GBR pools with ARP preemption."""

    def __init__(self) -> None:
        self._pools: dict[str, _SitePool] = {}
        self.admitted = 0
        self.rejected = 0
        self.preempted: list[Reservation] = []

    def register_site(self, site_name: str, gbr_capacity: float) -> None:
        """Declare how much of a site's bandwidth is reservable."""
        if gbr_capacity <= 0:
            raise ValueError("GBR capacity must be positive")
        self._pools[site_name] = _SitePool(capacity=gbr_capacity)

    def pool(self, site_name: str) -> _SitePool:
        try:
            return self._pools[site_name]
        except KeyError:
            raise KeyError(f"no GBR pool registered for site "
                           f"{site_name!r}") from None

    # -- admission --------------------------------------------------------

    def request(self, imsi: str, ebi: int, site_name: str, qci: int,
                gbr: float, arp: Optional[Arp] = None) -> Reservation:
        """Admit a bearer, preempting lower-ARP bearers if permitted.

        Non-GBR QCIs are admitted unconditionally (no reservation).
        Returns the reservation; raises :class:`AdmissionError` when the
        pool is full and preemption cannot make room.  Preempted
        reservations are appended to :attr:`preempted` -- the caller is
        responsible for deactivating the corresponding bearers.
        """
        arp = arp if arp is not None else Arp()
        reservation = Reservation(imsi=imsi, ebi=ebi, site_name=site_name,
                                  gbr=gbr, arp=arp)
        if not qos_for(qci).is_gbr or gbr <= 0:
            self.admitted += 1
            return reservation          # non-GBR: nothing to reserve
        pool = self.pool(site_name)
        if gbr > pool.capacity:
            self.rejected += 1
            raise AdmissionError(
                f"GBR {gbr / 1e6:.1f} Mbps exceeds site capacity")
        while pool.available < gbr:
            victim = self._preemption_victim(pool, arp)
            if victim is None:
                self.rejected += 1
                raise AdmissionError(
                    f"site {site_name!r} GBR pool exhausted "
                    f"({pool.available / 1e6:.1f} of {gbr / 1e6:.1f} Mbps "
                    f"free) and nothing preemptable")
            del pool.reservations[victim.key]
            self.preempted.append(victim)
        pool.reservations[reservation.key] = reservation
        self.admitted += 1
        return reservation

    @staticmethod
    def _preemption_victim(pool: _SitePool,
                           requester: Arp) -> Optional[Reservation]:
        candidates = [r for r in pool.reservations.values()
                      if requester.beats(r.arp)]
        if not candidates:
            return None
        # evict the lowest-priority (numerically highest) first
        return max(candidates, key=lambda r: r.arp.priority)

    def release(self, imsi: str, ebi: int, site_name: str) -> None:
        """Free a reservation (no-op if none exists)."""
        pool = self._pools.get(site_name)
        if pool is not None:
            pool.reservations.pop((imsi, ebi), None)

    def drain_preempted(self) -> list[Reservation]:
        """Return and clear the list of preempted reservations."""
        out = self.preempted
        self.preempted = []
        return out
