"""3GPP QoS Class Identifier (QCI) table.

Standardised characteristics from TS 23.203 Table 6.1.7.  Each bearer is
associated with one QCI; the priority column drives the strict-priority
scheduler on simulated links (Figure 10(a) measures RTT per QCI), and the
packet delay budget is used as an admission sanity check.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QosClass:
    """One row of the standardised QCI table."""

    qci: int
    resource_type: str          # "GBR" or "Non-GBR"
    priority: int               # lower value = higher scheduling priority
    packet_delay_budget: float  # seconds
    packet_error_loss_rate: float
    example_service: str

    @property
    def is_gbr(self) -> bool:
        return self.resource_type == "GBR"


#: TS 23.203 standardised QCI characteristics (Release 12).
QCI_TABLE: dict[int, QosClass] = {
    1: QosClass(1, "GBR", 2, 0.100, 1e-2, "conversational voice"),
    2: QosClass(2, "GBR", 4, 0.150, 1e-3, "conversational video"),
    3: QosClass(3, "GBR", 3, 0.050, 1e-3, "real-time gaming"),
    4: QosClass(4, "GBR", 5, 0.300, 1e-6, "buffered streaming"),
    5: QosClass(5, "Non-GBR", 1, 0.100, 1e-6, "IMS signalling"),
    6: QosClass(6, "Non-GBR", 6, 0.300, 1e-6, "buffered streaming / TCP"),
    7: QosClass(7, "Non-GBR", 7, 0.100, 1e-3, "voice / interactive gaming"),
    8: QosClass(8, "Non-GBR", 8, 0.300, 1e-6, "TCP premium"),
    9: QosClass(9, "Non-GBR", 9, 0.300, 1e-6, "TCP default / best effort"),
}

#: QCI used for default bearers (best effort internet access).
DEFAULT_BEARER_QCI = 9

#: QCI the paper provisions for the MEC dedicated bearer (low delay).
MEC_BEARER_QCI = 7


def qos_for(qci: int) -> QosClass:
    """Look up a QCI row; raises ``KeyError`` with a helpful message."""
    try:
        return QCI_TABLE[qci]
    except KeyError:
        raise KeyError(f"unknown QCI {qci}; standard QCIs are 1-9") from None


def apply_qci_priorities(link) -> None:
    """Register every standard QCI's scheduling priority on a link."""
    for qci, row in QCI_TABLE.items():
        link.set_qci_priority(qci, row.priority)
