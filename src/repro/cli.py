"""Command-line interface: ``python -m repro <command>``.

Gives the repository a front door: inspect the system, run the
examples, and regenerate individual paper experiments without knowing
the pytest incantations.

Commands
--------

``info``
    Package layout, experiment inventory and headline claims.
``experiments``
    List every reproducible table/figure and its bench target.
``run-experiment <id>``
    Regenerate one experiment (runs its benchmark via pytest).
``demo <name>``
    Run one of the example scripts (quickstart, retail, localization,
    isolation).
``overhead``
    Print the Section 4 control-overhead analysis right here.
``exp list | show <name> | run <name>``
    Inspect and execute the declarative experiment presets through
    the multi-seed :class:`repro.exp.ExperimentRunner` (optionally
    across worker processes).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

import repro

#: experiment id -> (benchmark file, one-line description)
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "fig3a": ("test_fig3a_surf_runtime.py",
              "SURF runtime vs resolution and device"),
    "fig3b": ("test_fig3b_match_runtime.py",
              "brute-force match runtime vs resolution and device"),
    "fig3c": ("test_fig3c_lte_rtt.py", "LTE->EC2 RTT CDF per region"),
    "fig3d": ("test_fig3d_ul_bandwidth.py",
              "LTE uplink bandwidth per region and signal"),
    "fig3e": ("test_fig3e_camera_fps.py", "camera preview FPS"),
    "fig3f": ("test_fig3f_fps_vs_capacity.py",
              "upload FPS vs codec and uplink capacity"),
    "fig3g": ("test_fig3g_background_traffic.py",
              "latency vs background traffic and server RTT"),
    "fig3h": ("test_fig3h_db_size.py", "match runtime vs database size"),
    "overhead": ("test_overhead_control_messages.py",
                 "Sec 4 control overhead (15 msgs / 2914 B) + ablation"),
    "fig6": ("test_fig6_lte_direct_trace.py",
             "rxPower/SNR walk trace past three landmarks"),
    "fig8": ("test_fig8_dataplane.py",
             "GW-U data-plane throughput (OpenEPC/ACACIA/IDEAL)"),
    "fig9": ("test_fig9_localization.py",
             "localisation error vs number of landmarks"),
    "fig10a": ("test_fig10a_qci_rtt.py", "UE->MEC RTT by QCI"),
    "fig10b": ("test_fig10b_isolation.py",
               "latency vs background traffic for the three designs"),
    "compression": ("test_compression.py",
                    "JPEG-90 encode time and ratio (Sec 7.3)"),
    "fig11a": ("test_fig11a_search_space.py",
               "matching time by search scheme, machine, resolution"),
    "fig11b": ("test_fig11b_match_cdf.py", "matching-runtime CDF"),
    "fig12": ("test_fig12_multiclient.py",
              "matching time vs concurrent clients"),
    "fig13": ("test_fig13_end_to_end.py",
              "end-to-end breakdown: ACACIA vs MEC vs CLOUD"),
    "discovery-tech": ("test_ablation_discovery_tech.py",
                       "ablation: LTE-direct vs iBeacon vs Wi-Fi Aware"),
    "middlebox": ("test_ablation_middlebox.py",
                  "ablation: middlebox inspection vs UE classification"),
    "handover": ("test_ablation_handover.py",
                 "ablation: AR session continuity across handover"),
    "vr-budget": ("test_ext_vr_budget.py",
                  "extension: VR motion-to-photon, edge vs cloud"),
    "tcp-dataplane": ("test_ext_tcp_dataplane.py",
                      "extension: Fig 8 with a congestion-controlled "
                      "flow"),
}

DEMOS = {
    "quickstart": "quickstart.py",
    "retail": "retail_store_demo.py",
    "localization": "localization_walkthrough.py",
    "isolation": "traffic_isolation.py",
    "vr": "vr_split_rendering.py",
    "mobility": "store_walk_mobility.py",
}

_ROOT = Path(__file__).resolve().parent.parent.parent


def cmd_info(_: argparse.Namespace) -> int:
    print(f"ACACIA reproduction v{repro.__version__}")
    print(repro.__doc__)
    print(f"{len(EXPERIMENTS)} reproducible experiments "
          f"(`python -m repro experiments`)")
    print(f"{len(DEMOS)} runnable demos (`python -m repro demo <name>`): "
          + ", ".join(DEMOS))
    return 0


def cmd_experiments(_: argparse.Namespace) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, (_, description) in EXPERIMENTS.items():
        print(f"  {key:<{width}}  {description}")
    print("\nrun one with: python -m repro run-experiment <id>")
    return 0


def cmd_run_experiment(args: argparse.Namespace) -> int:
    try:
        bench_file, description = EXPERIMENTS[args.experiment]
    except KeyError:
        print(f"unknown experiment {args.experiment!r}; "
              f"see `python -m repro experiments`", file=sys.stderr)
        return 2
    print(f"regenerating: {description}\n")
    command = [sys.executable, "-m", "pytest",
               str(_ROOT / "benchmarks" / bench_file),
               "--benchmark-only", "-q", "-s"]
    return subprocess.call(command, cwd=_ROOT)


def cmd_demo(args: argparse.Namespace) -> int:
    try:
        script = DEMOS[args.name]
    except KeyError:
        print(f"unknown demo {args.name!r}; options: {', '.join(DEMOS)}",
              file=sys.stderr)
        return 2
    return subprocess.call([sys.executable,
                            str(_ROOT / "examples" / script)], cwd=_ROOT)


def cmd_overhead(_: argparse.Namespace) -> int:
    from repro.core import MobileNetwork
    from repro.epc.overhead import (APP_DRIVEN_EVENTS_PER_DAY,
                                    PROMOTION_EVENTS_PER_DAY,
                                    daily_overhead_mb)
    network = MobileNetwork()
    ue = network.add_ue()
    release = network.control_plane.release_to_idle(ue)
    reestablish = network.control_plane.service_request(ue)
    messages = release.messages + reestablish.messages
    by_protocol: dict[str, list[int]] = {}
    for message in messages:
        entry = by_protocol.setdefault(message.protocol, [0, 0])
        entry[0] += 1
        entry[1] += message.size
    total = sum(msg.size for msg in messages)
    print("release + re-establish control overhead (Section 4):")
    for protocol, (count, size) in sorted(by_protocol.items()):
        print(f"  {protocol:<10} {count:>3} messages  {size:>5} bytes")
    print(f"  {'TOTAL':<10} {len(messages):>3} messages  {total:>5} bytes")
    print(f"\napp-driven daily overhead "
          f"({APP_DRIVEN_EVENTS_PER_DAY}/day): "
          f"{daily_overhead_mb(total, APP_DRIVEN_EVENTS_PER_DAY):.2f} MB")
    print(f"worst-case daily overhead ({PROMOTION_EVENTS_PER_DAY}/day): "
          f"{daily_overhead_mb(total, PROMOTION_EVENTS_PER_DAY):.1f} MB")
    return 0


def cmd_exp_list(_: argparse.Namespace) -> int:
    from repro.exp import PRESETS
    width = max(len(k) for k in PRESETS)
    for name, spec in PRESETS.items():
        axes = ", ".join(f"{axis}x{len(values)}"
                         for axis, values in spec.sweep) or "-"
        print(f"  {name:<{width}}  workload={spec.workload:<12} "
              f"seeds={len(spec.seeds)}  sweep: {axes}  "
              f"({len(spec.trials())} trials)")
    print("\nrun one with: python -m repro exp run <name>")
    return 0


def cmd_exp_show(args: argparse.Namespace) -> int:
    import json

    from repro.exp import preset
    try:
        spec = preset(args.name)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(json.dumps(spec.to_dict(), indent=2))
    return 0


def cmd_exp_run(args: argparse.Namespace) -> int:
    from repro.exp import ExperimentRunner, preset
    try:
        spec = preset(args.name)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    workers = None if args.serial else args.workers
    trials = len(spec.trials())
    mode = "serial" if workers in (None, 1) else f"{workers} workers"
    print(f"running {spec.name!r}: {trials} trials ({mode})",
          file=sys.stderr)
    result = ExperimentRunner(spec, workers=workers).run()
    text = result.canonical_json()
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    for failure in result.failures():
        print(f"trial {failure.trial.index} failed:\n{failure.error}",
              file=sys.stderr)
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ACACIA (CoNEXT 2016) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package overview").set_defaults(
        func=cmd_info)
    sub.add_parser("experiments",
                   help="list reproducible experiments").set_defaults(
        func=cmd_experiments)
    run = sub.add_parser("run-experiment",
                         help="regenerate one table/figure")
    run.add_argument("experiment", help="experiment id (e.g. fig13)")
    run.set_defaults(func=cmd_run_experiment)
    demo = sub.add_parser("demo", help="run an example script")
    demo.add_argument("name", help=f"one of: {', '.join(DEMOS)}")
    demo.set_defaults(func=cmd_demo)
    sub.add_parser("overhead",
                   help="print the Sec 4 overhead analysis").set_defaults(
        func=cmd_overhead)

    exp = sub.add_parser("exp",
                         help="declarative multi-seed experiment runner")
    exp_sub = exp.add_subparsers(dest="exp_command", required=True)
    exp_sub.add_parser("list",
                       help="list experiment presets").set_defaults(
        func=cmd_exp_list)
    show = exp_sub.add_parser("show", help="print a preset spec as JSON")
    show.add_argument("name", help="preset name (e.g. fig10b)")
    show.set_defaults(func=cmd_exp_show)
    run_exp = exp_sub.add_parser(
        "run", help="execute a preset and emit canonical JSON results")
    run_exp.add_argument("name", help="preset name (e.g. smoke)")
    run_exp.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: serial)")
    run_exp.add_argument("--serial", action="store_true",
                         help="force a serial in-process run")
    run_exp.add_argument("--output", default=None,
                         help="write results JSON to this file")
    run_exp.set_defaults(func=cmd_exp_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
