"""Command-line interface: ``python -m repro <command>``.

Gives the repository a front door: inspect the system, run the
examples, and regenerate individual paper experiments without knowing
the pytest incantations.

Commands
--------

``info``
    Package layout, experiment inventory and headline claims.
``experiments``
    List every reproducible table/figure and its bench target.
``run-experiment <id>``
    Regenerate one experiment (runs its benchmark via pytest).
``demo <name>``
    Run one of the example scripts (quickstart, retail, localization,
    isolation).
``overhead``
    Print the Section 4 control-overhead analysis right here.
``exp list | show <name> | run <name>``
    Inspect and execute the declarative experiment presets through
    the multi-seed :class:`repro.exp.ExperimentRunner` (optionally
    across worker processes).
``scenario list | show <name> | validate [names...] | run <name>``
    The declarative scenario layer: browse the shipped ``scenarios/``
    catalogue, validate documents against the published schema, and
    compile-and-run them through the same experiment runner -- with
    ``--jsonl`` per-trial output whose provenance embeds the scenario
    digest.
``ops serve | run | status | attach | inject | tail | ...``
    The live operator service (:mod:`repro.ops`): ``serve`` runs a
    scenario as a paced asyncio service with a JSON-RPC control
    endpoint; ``run`` drives it unpaced and synchronous (the
    deterministic reference); the remaining subcommands are the
    control client, pointed at a running service with ``--connect``.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

import repro

#: experiment id -> (benchmark file, one-line description)
EXPERIMENTS: dict[str, tuple[str, str]] = {
    "fig3a": ("test_fig3a_surf_runtime.py",
              "SURF runtime vs resolution and device"),
    "fig3b": ("test_fig3b_match_runtime.py",
              "brute-force match runtime vs resolution and device"),
    "fig3c": ("test_fig3c_lte_rtt.py", "LTE->EC2 RTT CDF per region"),
    "fig3d": ("test_fig3d_ul_bandwidth.py",
              "LTE uplink bandwidth per region and signal"),
    "fig3e": ("test_fig3e_camera_fps.py", "camera preview FPS"),
    "fig3f": ("test_fig3f_fps_vs_capacity.py",
              "upload FPS vs codec and uplink capacity"),
    "fig3g": ("test_fig3g_background_traffic.py",
              "latency vs background traffic and server RTT"),
    "fig3h": ("test_fig3h_db_size.py", "match runtime vs database size"),
    "overhead": ("test_overhead_control_messages.py",
                 "Sec 4 control overhead (15 msgs / 2914 B) + ablation"),
    "fig6": ("test_fig6_lte_direct_trace.py",
             "rxPower/SNR walk trace past three landmarks"),
    "fig8": ("test_fig8_dataplane.py",
             "GW-U data-plane throughput (OpenEPC/ACACIA/IDEAL)"),
    "fig9": ("test_fig9_localization.py",
             "localisation error vs number of landmarks"),
    "fig10a": ("test_fig10a_qci_rtt.py", "UE->MEC RTT by QCI"),
    "fig10b": ("test_fig10b_isolation.py",
               "latency vs background traffic for the three designs"),
    "compression": ("test_compression.py",
                    "JPEG-90 encode time and ratio (Sec 7.3)"),
    "fig11a": ("test_fig11a_search_space.py",
               "matching time by search scheme, machine, resolution"),
    "fig11b": ("test_fig11b_match_cdf.py", "matching-runtime CDF"),
    "fig12": ("test_fig12_multiclient.py",
              "matching time vs concurrent clients"),
    "fig13": ("test_fig13_end_to_end.py",
              "end-to-end breakdown: ACACIA vs MEC vs CLOUD"),
    "discovery-tech": ("test_ablation_discovery_tech.py",
                       "ablation: LTE-direct vs iBeacon vs Wi-Fi Aware"),
    "middlebox": ("test_ablation_middlebox.py",
                  "ablation: middlebox inspection vs UE classification"),
    "handover": ("test_ablation_handover.py",
                 "ablation: AR session continuity across handover"),
    "vr-budget": ("test_ext_vr_budget.py",
                  "extension: VR motion-to-photon, edge vs cloud"),
    "tcp-dataplane": ("test_ext_tcp_dataplane.py",
                      "extension: Fig 8 with a congestion-controlled "
                      "flow"),
}

DEMOS = {
    "quickstart": "quickstart.py",
    "retail": "retail_store_demo.py",
    "localization": "localization_walkthrough.py",
    "isolation": "traffic_isolation.py",
    "vr": "vr_split_rendering.py",
    "mobility": "store_walk_mobility.py",
}

_ROOT = Path(__file__).resolve().parent.parent.parent


def cmd_info(_: argparse.Namespace) -> int:
    print(f"ACACIA reproduction v{repro.__version__}")
    print(repro.__doc__)
    print(f"{len(EXPERIMENTS)} reproducible experiments "
          f"(`python -m repro experiments`)")
    print(f"{len(DEMOS)} runnable demos (`python -m repro demo <name>`): "
          + ", ".join(DEMOS))
    return 0


def cmd_experiments(_: argparse.Namespace) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for key, (_, description) in EXPERIMENTS.items():
        print(f"  {key:<{width}}  {description}")
    print("\nrun one with: python -m repro run-experiment <id>")
    return 0


def cmd_run_experiment(args: argparse.Namespace) -> int:
    try:
        bench_file, description = EXPERIMENTS[args.experiment]
    except KeyError:
        print(f"unknown experiment {args.experiment!r}; "
              f"see `python -m repro experiments`", file=sys.stderr)
        return 2
    print(f"regenerating: {description}\n")
    command = [sys.executable, "-m", "pytest",
               str(_ROOT / "benchmarks" / bench_file),
               "--benchmark-only", "-q", "-s"]
    return subprocess.call(command, cwd=_ROOT)


def cmd_demo(args: argparse.Namespace) -> int:
    try:
        script = DEMOS[args.name]
    except KeyError:
        print(f"unknown demo {args.name!r}; options: {', '.join(DEMOS)}",
              file=sys.stderr)
        return 2
    return subprocess.call([sys.executable,
                            str(_ROOT / "examples" / script)], cwd=_ROOT)


def cmd_overhead(_: argparse.Namespace) -> int:
    from repro.core import MobileNetwork
    from repro.epc.overhead import (APP_DRIVEN_EVENTS_PER_DAY,
                                    PROMOTION_EVENTS_PER_DAY,
                                    daily_overhead_mb)
    network = MobileNetwork()
    ue = network.add_ue()
    release = network.control_plane.release_to_idle(ue)
    reestablish = network.control_plane.service_request(ue)
    messages = release.messages + reestablish.messages
    by_protocol: dict[str, list[int]] = {}
    for message in messages:
        entry = by_protocol.setdefault(message.protocol, [0, 0])
        entry[0] += 1
        entry[1] += message.size
    total = sum(msg.size for msg in messages)
    print("release + re-establish control overhead (Section 4):")
    for protocol, (count, size) in sorted(by_protocol.items()):
        print(f"  {protocol:<10} {count:>3} messages  {size:>5} bytes")
    print(f"  {'TOTAL':<10} {len(messages):>3} messages  {total:>5} bytes")
    print(f"\napp-driven daily overhead "
          f"({APP_DRIVEN_EVENTS_PER_DAY}/day): "
          f"{daily_overhead_mb(total, APP_DRIVEN_EVENTS_PER_DAY):.2f} MB")
    print(f"worst-case daily overhead ({PROMOTION_EVENTS_PER_DAY}/day): "
          f"{daily_overhead_mb(total, PROMOTION_EVENTS_PER_DAY):.1f} MB")
    return 0


def cmd_exp_list(_: argparse.Namespace) -> int:
    from repro.exp import PRESETS
    width = max(len(k) for k in PRESETS)
    for name, spec in PRESETS.items():
        axes = ", ".join(f"{axis}x{len(values)}"
                         for axis, values in spec.sweep) or "-"
        print(f"  {name:<{width}}  workload={spec.workload:<12} "
              f"seeds={len(spec.seeds)}  sweep: {axes}  "
              f"({len(spec.trials())} trials)")
    print("\nrun one with: python -m repro exp run <name>")
    return 0


def cmd_exp_show(args: argparse.Namespace) -> int:
    import json

    from repro.exp import preset
    try:
        spec = preset(args.name)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(json.dumps(spec.to_dict(), indent=2))
    print(f"\nspec digest: {spec.digest()}")
    try:
        from repro.scenario import load
        print(f"scenario digest: {load(args.name).digest()}")
    except Exception:
        pass        # not every spec needs a catalogue document
    trials = spec.trials()
    print(f"\n{len(trials)} trials (seeds derived from experiment name "
          "x workload x base seed; sweep cells sharing a base seed are "
          "paired):")
    print(f"  {'idx':>3}  {'base_seed':>9}  {'derived seed':>20}  cell")
    for trial in trials:
        cell = {k: v for k, v in trial.param_dict.items()
                if k not in dict(spec.params)}
        print(f"  {trial.index:>3}  {trial.base_seed:>9}  "
              f"{trial.seed:>20}  {cell}")
    return 0


def cmd_exp_run(args: argparse.Namespace) -> int:
    from repro.exp import ExperimentRunner, preset
    try:
        spec = preset(args.name)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 2
    workers = None if args.serial else args.workers
    trials = len(spec.trials())
    mode = "serial" if workers in (None, 1) else f"{workers} workers"
    print(f"running {spec.name!r}: {trials} trials ({mode})",
          file=sys.stderr)
    result = ExperimentRunner(spec, workers=workers).run()
    text = result.canonical_json()
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    for failure in result.failures():
        print(f"trial {failure.trial.index} failed:\n{failure.error}",
              file=sys.stderr)
    return 0 if result.ok else 1


def cmd_scenario_list(_: argparse.Namespace) -> int:
    from repro.scenario import CATALOGUE_DIR, catalogue, load
    entries = catalogue()
    if not entries:
        print(f"no scenarios found under {CATALOGUE_DIR}",
              file=sys.stderr)
        return 1
    width = max(len(name) for name in entries)
    for name in entries:
        scenario = load(name)
        description = scenario.description
        if len(description) > 56:
            description = description[:53] + "..."
        tags = ",".join(scenario.tags) or "-"
        print(f"  {name:<{width}}  {scenario.workload:<12} "
              f"[{tags}]  {description}")
    print("\nrun one with: python -m repro scenario run <name>")
    return 0


def cmd_scenario_show(args: argparse.Namespace) -> int:
    import json

    from repro.scenario import ScenarioError, load
    try:
        scenario = load(args.name)
    except ScenarioError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(json.dumps(scenario.to_dict(), indent=2))
    spec = scenario.compile()
    print(f"\nscenario digest: {scenario.digest()}")
    print(f"compiled spec digest: {spec.digest()}")
    print(f"compiles to: workload={spec.workload} "
          f"seeds={len(spec.seeds)} trials={len(spec.trials())}")
    return 0


def cmd_scenario_validate(args: argparse.Namespace) -> int:
    from repro.scenario import ScenarioError, catalogue, load
    names = args.names or sorted(catalogue())
    if not names:
        print("no scenarios to validate", file=sys.stderr)
        return 1
    failures = 0
    width = max(len(name) for name in names)
    for name in names:
        try:
            scenario = load(name)
            scenario.compile()
        except ScenarioError as exc:
            failures += 1
            print(f"  {name:<{width}}  FAIL  {exc}")
        else:
            print(f"  {name:<{width}}  ok    {scenario.digest()[:12]}")
    print(f"\n{len(names) - failures}/{len(names)} valid")
    return 1 if failures else 0


def cmd_scenario_run(args: argparse.Namespace) -> int:
    import json

    from repro.exp import ExperimentRunner
    from repro.scenario import ScenarioError, load
    try:
        scenario = load(args.name)
    except ScenarioError as exc:
        print(exc, file=sys.stderr)
        return 2
    spec = scenario.compile()
    digest = scenario.digest()
    workers = None if args.serial else args.workers
    mode = "serial" if workers in (None, 1) else f"{workers} workers"
    print(f"running scenario {scenario.name!r} "
          f"(digest {digest[:12]}): {len(spec.trials())} trials "
          f"({mode})", file=sys.stderr)
    result = ExperimentRunner(spec, workers=workers).run()

    if args.jsonl:
        lines = []
        for trial_result in result.trials:
            record = trial_result.to_dict()
            record["provenance"]["scenario"] = scenario.name
            record["provenance"]["scenario_digest"] = digest
            lines.append(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")))
        text = "\n".join(lines)
    else:
        record = result.to_dict()
        record["scenario"] = {"name": scenario.name,
                              "digest": digest,
                              "spec_digest": spec.digest()}
        for trial_record in record["trials"]:
            trial_record["provenance"]["scenario"] = scenario.name
            trial_record["provenance"]["scenario_digest"] = digest
        text = json.dumps(record, sort_keys=True, indent=2)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    for failure in result.failures():
        print(f"trial {failure.trial.index} failed:\n{failure.error}",
              file=sys.stderr)
    return 0 if result.ok else 1


def cmd_ops_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.ops.service import load_service
    from repro.scenario import ScenarioError
    try:
        service = load_service(args.scenario, seed=args.seed,
                               duration=args.duration, rtf=args.rtf,
                               sink=(open(args.telemetry, "w")
                                     if args.telemetry else None))
    except ScenarioError as exc:
        print(exc, file=sys.stderr)
        return 2
    pacing = (f"rtf={service.config.pacer.rtf}x"
              if service.config.pacer.rtf > 0 else "unpaced")
    print(f"serving {service.scenario.name!r} "
          f"(seed {service.trial.seed}, {pacing}) "
          f"until t={service.run.end_time:.0f}s"
          + (f" on {args.connect}" if args.connect else ""),
          file=sys.stderr)
    summary = asyncio.run(service.serve(endpoint=args.connect))
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def cmd_ops_run(args: argparse.Namespace) -> int:
    import json

    from repro.ops.service import load_service
    from repro.scenario import ScenarioError
    try:
        service = load_service(args.scenario, seed=args.seed,
                               duration=args.duration,
                               sink=(open(args.telemetry, "w")
                                     if args.telemetry else None))
    except ScenarioError as exc:
        print(exc, file=sys.stderr)
        return 2
    summary = service.run_batch()
    print(json.dumps(summary, indent=2, sort_keys=True))
    print(f"metrics digest: {service.metrics_digest(summary)}",
          file=sys.stderr)
    return 0


def cmd_ops_client(args: argparse.Namespace) -> int:
    import json

    from repro.ops.control import ControlClient, ControlError
    command = args.ops_command
    try:
        with ControlClient(args.connect) as client:
            if command == "tail":
                for record in client.stream():
                    print(json.dumps(record, sort_keys=True))
                return 0
            # thunks: each subcommand defines only its own argparse
            # attributes, so the request must be built lazily
            method, params = {
                "status": lambda: ("status", {}),
                "snapshot": lambda: ("snapshot", {}),
                "drain": lambda: ("drain", {}),
                "stop": lambda: ("shutdown", {}),
                "site-load": lambda: (
                    "site_load",
                    {"site": args.site} if args.site else {}),
                "attach": lambda: ("attach_ue", {"enb": args.enb}),
                "detach": lambda: ("detach_ue", {"ue": args.ue}),
                "session-start": lambda: ("start_session",
                                          {"ue": args.ue}),
                "session-stop": lambda: ("stop_session",
                                         {"ue": args.ue}),
                "inject": lambda: ("inject_fault",
                                   {"spec": json.loads(args.spec)}),
                "clear": lambda: ("clear_fault", {"link": args.link}),
            }[command]()
            result = client.call(method, **params)
            print(json.dumps(result, indent=2, sort_keys=True))
            return 0
    except (ControlError, OSError) as exc:
        print(f"control call failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive tail
        return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ACACIA (CoNEXT 2016) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package overview").set_defaults(
        func=cmd_info)
    sub.add_parser("experiments",
                   help="list reproducible experiments").set_defaults(
        func=cmd_experiments)
    run = sub.add_parser("run-experiment",
                         help="regenerate one table/figure")
    run.add_argument("experiment", help="experiment id (e.g. fig13)")
    run.set_defaults(func=cmd_run_experiment)
    demo = sub.add_parser("demo", help="run an example script")
    demo.add_argument("name", help=f"one of: {', '.join(DEMOS)}")
    demo.set_defaults(func=cmd_demo)
    sub.add_parser("overhead",
                   help="print the Sec 4 overhead analysis").set_defaults(
        func=cmd_overhead)

    exp = sub.add_parser("exp",
                         help="declarative multi-seed experiment runner")
    exp_sub = exp.add_subparsers(dest="exp_command", required=True)
    exp_sub.add_parser("list",
                       help="list experiment presets").set_defaults(
        func=cmd_exp_list)
    show = exp_sub.add_parser("show", help="print a preset spec as JSON")
    show.add_argument("name", help="preset name (e.g. fig10b)")
    show.set_defaults(func=cmd_exp_show)
    run_exp = exp_sub.add_parser(
        "run", help="execute a preset and emit canonical JSON results")
    run_exp.add_argument("name", help="preset name (e.g. smoke)")
    run_exp.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: serial)")
    run_exp.add_argument("--serial", action="store_true",
                         help="force a serial in-process run")
    run_exp.add_argument("--output", default=None,
                         help="write results JSON to this file")
    run_exp.set_defaults(func=cmd_exp_run)

    scenario = sub.add_parser(
        "scenario", help="declarative scenario documents and catalogue")
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)
    scenario_sub.add_parser(
        "list", help="list the shipped scenario catalogue").set_defaults(
        func=cmd_scenario_list)
    show_sc = scenario_sub.add_parser(
        "show", help="print a scenario document, digest and compiled "
                     "spec summary")
    show_sc.add_argument("name", help="catalogue name or document path")
    show_sc.set_defaults(func=cmd_scenario_show)
    validate_sc = scenario_sub.add_parser(
        "validate", help="validate documents against the schema "
                         "(default: whole catalogue)")
    validate_sc.add_argument("names", nargs="*",
                             help="catalogue names or document paths")
    validate_sc.set_defaults(func=cmd_scenario_validate)
    run_sc = scenario_sub.add_parser(
        "run", help="compile a scenario and run it through the "
                    "experiment runner")
    run_sc.add_argument("name", help="catalogue name or document path")
    run_sc.add_argument("--jsonl", action="store_true",
                        help="one JSON line per trial, scenario digest "
                             "embedded in each provenance")
    run_sc.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: serial)")
    run_sc.add_argument("--serial", action="store_true",
                        help="force a serial in-process run")
    run_sc.add_argument("--output", default=None,
                        help="write results to this file")
    run_sc.set_defaults(func=cmd_scenario_run)

    ops = sub.add_parser(
        "ops", help="live operator service: serve a scenario, or "
                    "control a running one")
    ops_sub = ops.add_subparsers(dest="ops_command", required=True)

    serve_op = ops_sub.add_parser(
        "serve", help="run a scenario as a paced, controllable service")
    serve_op.add_argument("scenario",
                          help="catalogue name or document path")
    serve_op.add_argument("--connect", default=None, metavar="ENDPOINT",
                          help="control endpoint to serve "
                               "(unix:<path> or tcp:<host>:<port>)")
    serve_op.add_argument("--rtf", type=float, default=None,
                          help="real-time factor override "
                               "(0 = as fast as possible)")
    serve_op.add_argument("--seed", type=int, default=None,
                          help="base seed override")
    serve_op.add_argument("--duration", type=float, default=None,
                          help="run.duration override (compresses the "
                               "diurnal day)")
    serve_op.add_argument("--telemetry", default=None, metavar="FILE",
                          help="write the telemetry JSONL stream here")
    serve_op.set_defaults(func=cmd_ops_serve)

    run_op = ops_sub.add_parser(
        "run", help="drive the same scenario unpaced and synchronous "
                    "(the deterministic reference)")
    run_op.add_argument("scenario", help="catalogue name or document path")
    run_op.add_argument("--seed", type=int, default=None,
                        help="base seed override")
    run_op.add_argument("--duration", type=float, default=None,
                        help="run.duration override")
    run_op.add_argument("--telemetry", default=None, metavar="FILE",
                        help="write the telemetry JSONL stream here")
    run_op.set_defaults(func=cmd_ops_run)

    def client(name: str, help_text: str):
        p = ops_sub.add_parser(name, help=help_text)
        p.add_argument("--connect", required=True, metavar="ENDPOINT",
                       help="control endpoint of the running service")
        p.set_defaults(func=cmd_ops_client)
        return p

    client("status", "query the running service")
    client("snapshot", "full metrics summary of the running service")
    client("drain", "stop offering new match load")
    client("stop", "request a graceful shutdown")
    site_load = client("site-load", "per-site matcher/admission load")
    site_load.add_argument("--site", default=None,
                           help="one site (default: all)")
    attach = client("attach", "attach a new UE")
    attach.add_argument("--enb", default="enb0",
                        help="cell to attach in (default enb0)")
    for name, help_text in (("detach", "release a UE to idle"),
                            ("session-start", "start a CI session"),
                            ("session-stop", "stop a CI session")):
        p = client(name, help_text)
        p.add_argument("ue", help="UE name (e.g. opsue0)")
    inject = client("inject", "inject a fault")
    inject.add_argument("spec",
                        help='fault spec JSON, e.g. \'{"type": '
                             '"link_down", "link": "backhaul0", '
                             '"duration": 5}\'')
    clear = client("clear", "force a link back up")
    clear.add_argument("link", help="link name (or sig.<channel>)")
    client("tail", "stream telemetry records to stdout")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
