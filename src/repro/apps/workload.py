"""Workload generators for the evaluation experiments.

The paper's Section 7.3 methodology: select 24 objects located at the
checkpoints of Figure 9(a), generate 5 frames per object from the AR
application at those positions, and measure rxPower from the 7
landmarks at each checkpoint.  :class:`CheckpointWorkload` reproduces
exactly that dataset against the synthetic store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.apps.scenario import Checkpoint, StoreScenario
from repro.core.localization_manager import LocalizationManager
from repro.d2d.radio import RadioModel
from repro.vision.camera import R960x720, Resolution
from repro.vision.database import ObjectDatabase, ObjectRecord
from repro.vision.features import FeatureExtractor, Frame


@dataclass
class CheckpointSample:
    """Everything measured at one checkpoint: the target object, its
    frames, and the rxPower observations of every audible landmark."""

    checkpoint: Checkpoint
    record: ObjectRecord
    frames: list[Frame]
    observations: dict[str, float]      # landmark -> rxPower (dBm)


class CheckpointWorkload:
    """The 24-checkpoint x 5-frame evaluation dataset."""

    def __init__(self, scenario: StoreScenario, db: ObjectDatabase,
                 radio: Optional[RadioModel] = None, seed: int = 0,
                 frames_per_object: int = 5,
                 resolution: Resolution = R960x720) -> None:
        self.scenario = scenario
        self.db = db
        self.radio = radio if radio is not None else RadioModel()
        self.rng = np.random.default_rng(seed)
        self.extractor = FeatureExtractor(np.random.default_rng(seed + 1))
        self.frames_per_object = frames_per_object
        self.resolution = resolution

    def nearest_object(self, checkpoint: Checkpoint) -> ObjectRecord:
        """The catalogued object physically closest to a checkpoint."""
        return min(self.db.all_records(),
                   key=lambda r: math.dist(r.position, checkpoint.position))

    def landmark_observations(self, position) -> dict[str, float]:
        """One shadowed rxPower sample per decodable landmark."""
        observations = {}
        for name, lm_pos in self.scenario.landmarks.items():
            d = math.dist(position, lm_pos)
            rx = self.radio.rx_power(d, self.rng)
            if self.radio.decodable(rx):
                observations[name] = rx
        return observations

    def sample(self, checkpoint: Checkpoint,
               resolution: Optional[Resolution] = None) -> CheckpointSample:
        record = self.nearest_object(checkpoint)
        res = resolution or self.resolution
        frames = [self.extractor.frame_of(record.model, res)
                  for _ in range(self.frames_per_object)]
        return CheckpointSample(
            checkpoint=checkpoint, record=record, frames=frames,
            observations=self.landmark_observations(checkpoint.position))

    def samples(self, resolution: Optional[Resolution] = None
                ) -> Iterator[CheckpointSample]:
        for checkpoint in self.scenario.checkpoints:
            yield self.sample(checkpoint, resolution)

    @staticmethod
    def feed_localization(localization: LocalizationManager, user_id: str,
                          sample: CheckpointSample, now: float) -> None:
        """Report a sample's landmark observations for one user."""
        for landmark, rx_power in sample.observations.items():
            localization.report(user_id, landmark, rx_power, now)
