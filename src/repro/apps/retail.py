"""The engaged-retail application pair and store construction.

Builds the paper's evaluation store: 105 geo-tagged objects over 21
sub-sections, LTE-direct publishers at the landmark positions (the
sales staff's phones, each broadcasting its section), and the customer
side -- a GUI application that records interests with the ACACIA device
manager and forwards discovery observations to the CI server's
localisation manager (Section 6.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.apps.scenario import StoreScenario
from repro.core.device_manager import AcaciaDeviceManager, ServiceInfo
from repro.d2d.channel import D2DChannel, Publisher, Subscriber
from repro.d2d.expressions import ExpressionNamespace
from repro.d2d.messages import DiscoveryMessage, Observation
from repro.localization.landmarks import Landmark, LandmarkMap
from repro.vision.database import ObjectDatabase, ObjectRecord
from repro.vision.features import ObjectModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.localization_manager import LocalizationManager
    from repro.core.mrs import ActiveSession

#: Default number of catalogued objects (the paper's database size).
DEFAULT_OBJECT_COUNT = 105

#: The retail service's LTE-direct name.
RETAIL_SERVICE = "acme-retail"


def build_retail_database(scenario: StoreScenario,
                          n_objects: int = DEFAULT_OBJECT_COUNT,
                          n_features: int = 80,
                          seed: int = 0) -> ObjectDatabase:
    """Populate the store database: objects tagged at sub-section level.

    Objects are distributed round-robin over sub-sections (105 objects
    over 21 cells = 5 per cell), positioned with deterministic jitter
    around the cell centers.  One object per checkpoint is pinned at
    the checkpoint position, mirroring the paper's methodology of
    photographing objects *located at* the 24 checkpoints (Section 7.3).
    """
    rng = np.random.default_rng(seed)
    db = ObjectDatabase()
    counters: dict[str, itertools.count] = {}
    # first free object slot (round-robin index) for each checkpoint's
    # sub-section gets pinned at the checkpoint
    pinned: dict[int, tuple[float, float]] = {}
    for checkpoint in scenario.checkpoints:
        base = checkpoint.subsection
        slot = base
        while slot in pinned:
            slot += scenario.n_subsections     # next round-robin pass
        if slot < n_objects:
            pinned[slot] = checkpoint.position
    for i in range(n_objects):
        subsection = i % scenario.n_subsections
        section = scenario.section_of_subsection(subsection)
        counter = counters.setdefault(section, itertools.count(1))
        index = next(counter)
        name = f"{section}-item-{index}"
        center = scenario.subsection_center(subsection)
        if i in pinned:
            position = (pinned[i][0] + float(rng.uniform(-0.3, 0.3)),
                        pinned[i][1] + float(rng.uniform(-0.3, 0.3)))
        else:
            position = (center[0] + float(rng.uniform(-2.0, 2.0)),
                        center[1] + float(rng.uniform(-2.0, 2.0)))
        db.add(ObjectRecord(
            model=ObjectModel.generate(name, n_features=n_features,
                                       seed=seed * 100_000 + i),
            tag=f"{section} item #{index}: price, reviews, current sales",
            section=section, subsection=subsection, position=position))
    return db


def landmark_map_for(scenario: StoreScenario, regression) -> LandmarkMap:
    """LandmarkMap (localisation metadata) from the scenario geometry."""
    return LandmarkMap(
        landmarks=[Landmark(name, x, y)
                   for name, (x, y) in scenario.landmarks.items()],
        regression=regression)


@dataclass
class RetailStore:
    """Deploys the employee-side publishers onto a D2D channel."""

    scenario: StoreScenario
    channel: D2DChannel
    service_name: str = RETAIL_SERVICE
    discovery_period: float = 10.0
    namespace: ExpressionNamespace = field(
        default_factory=ExpressionNamespace)
    publishers: dict[str, Publisher] = field(default_factory=dict)

    def open(self, start_staggered: bool = True) -> None:
        """Sales staff open the retail app: one publisher per landmark,
        broadcasting its section as the offering."""
        for name, position in self.scenario.landmarks.items():
            section = self.scenario.section_at(position)
            message = DiscoveryMessage(
                publisher_id=name, service_name=self.service_name,
                code=self.namespace.code(self.service_name, section),
                payload=f"section={section}")
            publisher = Publisher(name, position, message,
                                  period=self.discovery_period)
            self.publishers[name] = publisher
            self.channel.add_publisher(
                publisher, start=None if start_staggered else 0.0)

    def close(self) -> None:
        for name in list(self.publishers):
            self.channel.remove_publisher(name)
        self.publishers.clear()


class RetailCustomerApp:
    """The customer-side GUI application (the paper's service discovery
    GUI + localisation handler).

    Registers interests with the ACACIA device manager; when discovery
    fires it (a) surfaces a notification to the user and (b) forwards
    (landmark, rxPower) to the LTE-direct localisation manager at the
    CI server.
    """

    def __init__(self, app_id: str,
                 device_manager: AcaciaDeviceManager,
                 channel: D2DChannel,
                 position,
                 service_id: str = "ar-retail",
                 localization: Optional["LocalizationManager"] = None,
                 on_notify: Optional[Callable[[Observation], None]] = None,
                 ) -> None:
        self.app_id = app_id
        self.device_manager = device_manager
        self.localization = localization
        self.on_notify = on_notify
        self.notifications: list[Observation] = []
        self.session: Optional["ActiveSession"] = None
        # the phone joins the D2D channel as a subscriber through the
        # device manager's modem
        self.subscriber = Subscriber(app_id, position,
                                     modem=device_manager.modem)
        channel.add_subscriber(self.subscriber)
        self._registered = False

    def open(self, interests: list[str]) -> None:
        """The customer opens the app and selects interests (sections)."""
        info = ServiceInfo(app_id=self.app_id, service_id="ar-retail",
                           lte_direct_service=RETAIL_SERVICE,
                           interests=list(interests))
        self.device_manager.register_app(
            info, on_discovery=self._on_discovery,
            on_connected=self._on_connected)
        # the localisation handler listens to the whole retail service
        # (all landmarks), not just the user's interests: trilateration
        # needs every audible landmark (Section 5.5)
        self.device_manager.modem.subscribe(
            f"{self.app_id}:__localization",
            self.device_manager.namespace.service_filter(RETAIL_SERVICE),
            self._on_landmark)
        self._registered = True

    def close(self) -> None:
        """The customer finishes: connectivity torn down, app removed."""
        if self._registered:
            self.device_manager.modem.unsubscribe(
                f"{self.app_id}:__localization")
            self.device_manager.unregister_app(self.app_id)
            self._registered = False

    def move_to(self, position) -> None:
        self.subscriber.move_to(position)

    # -- callbacks ----------------------------------------------------------

    def _on_connected(self, session: "ActiveSession") -> None:
        self.session = session

    def _on_discovery(self, observation: Observation) -> None:
        """An *interest* matched: notify the user (alarm/vibration)."""
        self.notifications.append(observation)
        if self.on_notify is not None:
            self.on_notify(observation)

    def _on_landmark(self, observation: Observation) -> None:
        """Any retail landmark heard: feed the localisation manager."""
        if self.localization is not None:
            self.localization.report_observation(self.app_id, observation)
