"""The AR back-end: the CI server application.

Processes uploaded frames (Section 6.3): decode, SURF extraction, then
object matching against the geo-tagged database pruned by the user's
context.  Matching *correctness* runs for real on the synthetic
descriptors; *runtimes* come from the calibrated device cost model so
the latency figures scale the way the paper's servers do.

Two views are provided: :class:`ARBackend` for direct (in-process)
experiments like Figures 11/12, and :class:`ARServerNode` which embeds
the back-end in the network simulator for the end-to-end runs of
Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.config import MatcherConfig
from repro.core.localization_manager import LocalizationManager
from repro.core.optimizer import SearchSpace, SearchSpaceOptimizer
from repro.vision.codec import CompressionModel, JPEG90
from repro.vision.costmodel import DEVICES, DeviceProfile
from repro.vision.database import ObjectDatabase
from repro.vision.features import Frame
from repro.vision.matcher import ObjectMatcher
from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.scenario import StoreScenario
    from repro.sim.engine import Simulator
    from repro.sim.link import Link


@dataclass
class ARResponse:
    """Result of processing one frame."""

    matched_object: Optional[str]
    tag: Optional[str]
    search_space: SearchSpace
    decode_time: float
    surf_time: float
    match_time: float
    correct: Optional[bool] = None      # filled when ground truth is known

    @property
    def compute_time(self) -> float:
        """Decode + SURF (the paper's 'Compute' bar in Figure 13)."""
        return self.decode_time + self.surf_time

    @property
    def server_time(self) -> float:
        return self.compute_time + self.match_time


class ARBackend:
    """Frame processing against a geo-tagged database.

    The matching engine is selected by ``matcher_config`` (default: the
    batched engine of :mod:`repro.vision.batch`, decision-equivalent to
    the reference matcher); an explicit ``matcher`` instance overrides
    the config.
    """

    def __init__(self, db: ObjectDatabase, scenario: "StoreScenario",
                 localization: LocalizationManager,
                 device: DeviceProfile = DEVICES["i7-8core"],
                 codec: CompressionModel = JPEG90,
                 matcher: Optional[ObjectMatcher] = None,
                 matcher_config: Optional[MatcherConfig] = None,
                 acacia_radius: float = 3.5) -> None:
        self.db = db
        self.scenario = scenario
        self.localization = localization
        self.device = device
        self.codec = codec
        if matcher is None:
            matcher = (matcher_config if matcher_config is not None
                       else MatcherConfig()).build()
        self.matcher = matcher
        self.optimizer = SearchSpaceOptimizer(db, scenario,
                                              acacia_radius=acacia_radius)
        self.frames_processed = 0

    def select_search_space(self, user_id: str, now: float,
                            scheme: str) -> SearchSpace:
        if scheme == "naive":
            return self.optimizer.naive()
        if scheme == "rxpower":
            strongest = self.localization.strongest_landmarks(user_id, now)
            return self.optimizer.rxpower(strongest)
        if scheme == "acacia":
            location = self.localization.location(user_id, now)
            fallback = self.localization.strongest_landmarks(user_id, now)
            return self.optimizer.acacia(location,
                                         fallback_landmarks=fallback)
        raise ValueError(f"unknown search scheme {scheme!r}")

    def process_frame(self, user_id: str, frame: Frame, now: float,
                      scheme: str = "acacia",
                      clients: int = 1) -> ARResponse:
        """Full back-end pass for one uploaded frame."""
        self.frames_processed += 1
        space = self.select_search_space(user_id, now, scheme)
        decode_time = self.codec.decode_time(frame.resolution)
        surf_time = self.device.surf_time(frame.resolution)
        match_time = self.device.db_match_time(
            frame.resolution, db_objects=space.size,
            object_features=self.db.mean_nominal_features(space.records)
            or 1.0,
            clients=clients)
        best = self.matcher.match_frame(
            frame, (record.model for record in space.records))
        matched = best.object_name if best is not None else None
        tag = self.db.get(matched).tag if matched is not None else None
        correct = matched == frame.true_object
        return ARResponse(matched_object=matched, tag=tag,
                          search_space=space, decode_time=decode_time,
                          surf_time=surf_time, match_time=match_time,
                          correct=correct)


class ARServerNode(Node):
    """Network-embedded CI server running an :class:`ARBackend`.

    Frame packets carry their :class:`~repro.vision.features.Frame` in
    ``meta["frame"]``; the node models the server compute time as a
    simulated delay and replies with a small annotation packet stamped
    with the compute breakdown.
    """

    RESPONSE_BYTES = 2000      # AR annotations: text/price/review snippet

    def __init__(self, sim: "Simulator", name: str, backend: ARBackend,
                 scheme: str = "acacia", ip: Optional[str] = None) -> None:
        super().__init__(sim, name, ip)
        self.backend = backend
        self.scheme = scheme
        self.responses: list[ARResponse] = []
        self.active_clients = 0

    def on_receive(self, packet: Packet, link: "Link") -> None:
        frame = packet.meta.get("frame")
        if frame is None:
            return      # not a frame upload; ignore
        self.active_clients += 1
        response = self.backend.process_frame(
            user_id=packet.meta.get("user_id", packet.src),
            frame=frame, now=self.sim.now, scheme=self.scheme,
            clients=max(1, self.active_clients))
        self.responses.append(response)
        self.sim.schedule(response.server_time, self._reply, packet,
                          response, link)

    def _reply(self, request: Packet, response: ARResponse,
               link: "Link") -> None:
        self.active_clients = max(0, self.active_clients - 1)
        reply = Packet(
            src=self.ip, dst=request.src, size=self.RESPONSE_BYTES,
            protocol=request.protocol, src_port=request.dst_port,
            dst_port=request.src_port, flow_id=request.flow_id,
            created_at=self.sim.now,
            meta={
                "response_to": request.packet_id,
                "frame_seq": request.meta.get("frame_seq"),
                "matched": response.matched_object,
                "tag": response.tag,
                "decode_time": response.decode_time,
                "surf_time": response.surf_time,
                "match_time": response.match_time,
            })
        port = self.port_for_link(link)
        if port is not None:
            self.send(port, reply)
