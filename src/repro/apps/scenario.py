"""Store floor geometry: sections, sub-sections, landmarks, checkpoints.

Mirrors the paper's evaluation environment (Figure 9(a)): a store floor
divided into 5 sections and 21 sub-sections, with 7 LTE-direct
landmarks and 24 checkpoints where objects are photographed.  The floor
is a 42 m x 18 m rectangle gridded into 7 x 3 sub-section cells of
6 m x 6 m; sections are contiguous groups of sub-section columns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

Position = tuple[float, float]

#: Grid dimensioning: 7 columns x 3 rows = 21 sub-sections of 6 m.
GRID_COLS = 7
GRID_ROWS = 3
CELL_SIZE = 6.0
FLOOR_WIDTH = GRID_COLS * CELL_SIZE     # 42 m
FLOOR_HEIGHT = GRID_ROWS * CELL_SIZE    # 18 m

#: The five retail sections, as contiguous column ranges.
SECTION_COLUMNS: dict[str, range] = {
    "food": range(0, 2),
    "toys": range(2, 3),
    "electronics": range(3, 5),
    "clothing": range(5, 6),
    "shoes": range(6, 7),
}


@dataclass(frozen=True)
class Checkpoint:
    """A named evaluation position on the floor."""

    name: str
    position: Position
    subsection: int


@dataclass
class WalkPath:
    """Piecewise-linear walk through the store at constant speed."""

    waypoints: list[Position]
    speed: float = 1.0      # m/s, a slow browse

    def __post_init__(self) -> None:
        if len(self.waypoints) < 2:
            raise ValueError("a walk needs at least two waypoints")
        if self.speed <= 0:
            raise ValueError("speed must be positive")
        self._lengths = [math.dist(a, b) for a, b in
                         zip(self.waypoints, self.waypoints[1:])]
        self.total_length = sum(self._lengths)

    @property
    def duration(self) -> float:
        return self.total_length / self.speed

    def position_at(self, t: float) -> Position:
        """Position after walking for ``t`` seconds (clamped at the end)."""
        if t <= 0:
            return self.waypoints[0]
        remaining = t * self.speed
        for (a, b), length in zip(zip(self.waypoints, self.waypoints[1:]),
                                  self._lengths):
            if remaining <= length and length > 0:
                frac = remaining / length
                return (a[0] + frac * (b[0] - a[0]),
                        a[1] + frac * (b[1] - a[1]))
            remaining -= length
        return self.waypoints[-1]


@dataclass
class StoreScenario:
    """The full evaluation floor: geometry + landmark/checkpoint layout."""

    landmarks: dict[str, Position]
    checkpoints: list[Checkpoint]
    cell_size: float = CELL_SIZE
    cols: int = GRID_COLS
    rows: int = GRID_ROWS
    section_columns: dict[str, range] = field(
        default_factory=lambda: dict(SECTION_COLUMNS))

    # -- geometry -----------------------------------------------------------

    def subsection_at(self, position: Position) -> int:
        """Sub-section (cell) id containing a position; row-major ids."""
        col = int(np.clip(position[0] // self.cell_size, 0, self.cols - 1))
        row = int(np.clip(position[1] // self.cell_size, 0, self.rows - 1))
        return row * self.cols + col

    def subsection_center(self, subsection: int) -> Position:
        if not (0 <= subsection < self.cols * self.rows):
            raise ValueError(f"invalid subsection {subsection}")
        row, col = divmod(subsection, self.cols)
        return ((col + 0.5) * self.cell_size, (row + 0.5) * self.cell_size)

    def section_of_subsection(self, subsection: int) -> str:
        col = subsection % self.cols
        for section, columns in self.section_columns.items():
            if col in columns:
                return section
        raise ValueError(f"subsection {subsection} maps to no section")

    def section_at(self, position: Position) -> str:
        return self.section_of_subsection(self.subsection_at(position))

    def section_of_landmark(self, name: str) -> str:
        return self.section_at(self.landmarks[name])

    def _cell_distance(self, subsection: int, position: Position) -> float:
        """Distance from a position to a sub-section's rectangle."""
        row, col = divmod(subsection, self.cols)
        xmin, xmax = col * self.cell_size, (col + 1) * self.cell_size
        ymin, ymax = row * self.cell_size, (row + 1) * self.cell_size
        dx = max(xmin - position[0], 0.0, position[0] - xmax)
        dy = max(ymin - position[1], 0.0, position[1] - ymax)
        return math.hypot(dx, dy)

    def subsections_near(self, position: Position,
                         radius: float = 3.5) -> list[int]:
        """Sub-sections whose *area* lies within ``radius`` of a position.

        This is ACACIA's pruning rule: any object within ``radius`` of
        the (error-prone) location estimate is guaranteed to stay in the
        search space, and with the default radius the rule selects 2-6
        of the 21 cells -- the range the paper reports (Section 7.3).
        """
        out = []
        for subsection in range(self.cols * self.rows):
            if self._cell_distance(subsection, position) <= radius:
                out.append(subsection)
        if not out:     # never return an empty search space
            out.append(self.subsection_at(position))
        return out

    @property
    def n_subsections(self) -> int:
        return self.cols * self.rows

    @property
    def sections(self) -> list[str]:
        return list(self.section_columns)


def store_scenario() -> StoreScenario:
    """The Figure 9(a) evaluation floor: 7 landmarks, 24 checkpoints."""
    landmarks = {
        "lm1": (4.0, 3.0),
        "lm2": (10.0, 14.0),
        "lm3": (16.0, 4.0),
        "lm4": (21.0, 10.0),
        "lm5": (27.0, 15.0),
        "lm6": (33.0, 4.0),
        "lm7": (39.0, 12.0),
    }
    # 24 checkpoints spread over the sub-section grid (at least one per
    # section, several per landmark neighbourhood), mirroring the
    # C1..C24 layout of Figure 9(a)
    positions = [
        (2.5, 2.0), (3.0, 9.5), (5.0, 15.5), (8.5, 3.5),
        (9.0, 10.0), (11.5, 16.0), (13.0, 2.5), (14.5, 8.5),
        (16.0, 15.0), (19.5, 4.0), (20.0, 11.0), (22.5, 16.5),
        (23.0, 2.0), (25.0, 9.0), (26.5, 15.5), (28.0, 3.0),
        (30.5, 10.5), (31.0, 16.0), (33.5, 2.5), (34.0, 9.5),
        (36.5, 15.0), (38.0, 4.5), (39.5, 10.0), (40.5, 16.5),
    ]
    scenario = StoreScenario(landmarks=landmarks, checkpoints=[])
    checkpoints = [
        Checkpoint(name=f"C{i + 1}", position=pos,
                   subsection=scenario.subsection_at(pos))
        for i, pos in enumerate(positions)
    ]
    scenario.checkpoints = checkpoints
    return scenario


def figure6_scenario() -> tuple[StoreScenario, WalkPath]:
    """The three-landmark walk of Figure 6: a subscriber walks from
    landmark 1 past landmark 2 to landmark 3."""
    landmarks = {
        "lm1": (5.0, 5.0),
        "lm2": (21.0, 13.0),
        "lm3": (38.0, 5.0),
    }
    scenario = StoreScenario(landmarks=landmarks, checkpoints=[])
    walk = WalkPath(
        waypoints=[(3.0, 4.0), (12.0, 9.0), (21.0, 12.0),
                   (30.0, 9.0), (39.0, 4.0)],
        speed=0.072)   # slow walk so the ~550 s trace matches Figure 6
    return scenario, walk
