"""The AR-based engaged-retail application and its store scenarios.

This is the paper's representative CI application (Sections 5.1/6.3):
a retail store equips sales staff with LTE-direct publishers; customers
subscribe to their interests, get notified near the matching section,
and an AR session streams camera frames to a CI server on the mobile
edge cloud which matches them against a geo-tagged object database.
"""

from repro.apps.ar_backend import ARBackend, ARResponse, ARServerNode
from repro.apps.ar_frontend import ARFrontend, ARSession
from repro.apps.mobility import MobileUser, MobilityManager
from repro.apps.retail import (RetailCustomerApp, RetailStore,
                               build_retail_database)
from repro.apps.scenario import (Checkpoint, StoreScenario, WalkPath,
                                 store_scenario)
from repro.apps.vr import VRClient, VRRenderServer
from repro.apps.workload import CheckpointWorkload

__all__ = [
    "ARBackend",
    "ARFrontend",
    "ARResponse",
    "ARServerNode",
    "ARSession",
    "Checkpoint",
    "CheckpointWorkload",
    "MobileUser",
    "MobilityManager",
    "RetailCustomerApp",
    "RetailStore",
    "StoreScenario",
    "VRClient",
    "VRRenderServer",
    "WalkPath",
    "build_retail_database",
    "store_scenario",
]
