"""A second CI application archetype: VR split rendering.

The paper motivates ACACIA with continuous interactive applications
beyond retail AR -- VR and autonomous driving in the introduction.
This module adds a VR-shaped workload to exercise the framework from
the opposite direction to AR: *tiny uplink* (head-pose updates at the
display tick rate) and *large downlink* (rendered view tiles), with
motion-to-photon latency as the quality metric.

The client runs open-loop at the tick rate (a head keeps moving whether
or not frames return), so late frames are measured, not avoided --
exactly how VR latency degrades in practice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.epc.events import DownlinkDelivered
from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.ue import UEDevice
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

_session_ids = itertools.count(1)

#: Head-pose update payload (quaternion + position + timestamp).
POSE_BYTES = 100

#: Rendered view tile shipped per pose (foveated/compressed).
DEFAULT_TILE_BYTES = 20_000

#: Display/pose tick rate.
DEFAULT_TICK_HZ = 60.0

VR_SERVER_PORT = 9100


@dataclass
class PoseRecord:
    """One completed pose -> photon round trip."""

    seq: int
    motion_to_photon: float


class VRRenderServer(Node):
    """Edge render farm: turns a pose into a view tile after a modeled
    GPU render time."""

    def __init__(self, sim: "Simulator", name: str,
                 render_time: float = 0.008,
                 tile_bytes: int = DEFAULT_TILE_BYTES,
                 ip: Optional[str] = None) -> None:
        super().__init__(sim, name, ip)
        self.render_time = render_time
        self.tile_bytes = tile_bytes
        self.poses_rendered = 0
        self._busy_until = 0.0

    def on_receive(self, packet: Packet, link: "Link") -> None:
        if packet.meta.get("pose_seq") is None:
            return
        # one GPU pipeline: renders serialize
        start = max(self.sim.now, self._busy_until)
        done = start + self.render_time
        self._busy_until = done
        self.sim.schedule(done - self.sim.now, self._reply, packet, link)

    def _reply(self, request: Packet, link: "Link") -> None:
        self.poses_rendered += 1
        tile = Packet(
            src=self.ip, dst=request.src, size=self.tile_bytes,
            protocol=request.protocol, src_port=request.dst_port,
            dst_port=request.src_port, flow_id=request.flow_id,
            qci=request.qci, created_at=self.sim.now,
            meta={"pose_seq": request.meta["pose_seq"],
                  "is_tile": True})
        port = self.port_for_link(link)
        if port is not None:
            self.send(port, tile)


class VRClient:
    """Open-loop pose streamer + motion-to-photon meter on a UE."""

    def __init__(self, sim: "Simulator", ue: "UEDevice", server_ip: str,
                 tick_hz: float = DEFAULT_TICK_HZ,
                 max_poses: Optional[int] = None) -> None:
        if tick_hz <= 0:
            raise ValueError("tick rate must be positive")
        self.sim = sim
        self.ue = ue
        self.server_ip = server_ip
        self.tick_interval = 1.0 / tick_hz
        self.max_poses = max_poses
        self.session_id = next(_session_ids)
        self.flow_id = f"vr-{self.session_id}"
        self.records: list[PoseRecord] = []
        self.poses_sent = 0
        self._sent_at: dict[int, float] = {}
        self._running = False
        self._subscription = sim.hooks.on(DownlinkDelivered,
                                          self._on_downlink)

    def start(self, at: float = 0.0) -> None:
        self._running = True
        self.sim.schedule(max(0.0, at - self.sim.now), self._tick)

    def stop(self) -> None:
        self._running = False

    def close(self) -> None:
        """Stop streaming and detach from the hook bus.  Idempotent."""
        self._running = False
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None

    def _tick(self) -> None:
        if not self._running:
            return
        if self.max_poses is not None and self.poses_sent >= self.max_poses:
            self._running = False
            return
        seq = self.poses_sent
        self.poses_sent += 1
        packet = Packet(
            src=self.ue.ip, dst=self.server_ip, size=POSE_BYTES,
            protocol="UDP", src_port=47000 + self.session_id,
            dst_port=VR_SERVER_PORT,
            flow_id=self.flow_id, created_at=self.sim.now,
            meta={"pose_seq": seq})
        self._sent_at[seq] = self.sim.now
        self.ue.send_app(packet)
        self.sim.schedule(self.tick_interval, self._tick)

    def _on_downlink(self, event: DownlinkDelivered) -> None:
        # tiles echo the pose's flow id, so filter to our UE + session
        if event.ue is not self.ue:
            return
        packet = event.packet
        if packet.flow_id != self.flow_id:
            return
        seq = packet.meta.get("pose_seq")
        if not packet.meta.get("is_tile") or seq not in self._sent_at:
            return
        sent_at = self._sent_at.pop(seq)
        self.records.append(PoseRecord(
            seq=seq, motion_to_photon=self.sim.now - sent_at))

    # -- quality metrics -----------------------------------------------------

    def motion_to_photon(self) -> np.ndarray:
        return np.array([r.motion_to_photon for r in self.records])

    def percentile(self, q: float) -> float:
        samples = self.motion_to_photon()
        return float(np.percentile(samples, q)) if len(samples) else 0.0

    def fraction_within(self, budget: float) -> float:
        """Fraction of rendered poses inside a latency budget, counting
        never-answered poses as misses."""
        if self.poses_sent == 0:
            return 0.0
        good = sum(1 for r in self.records
                   if r.motion_to_photon <= budget)
        return good / self.poses_sent
