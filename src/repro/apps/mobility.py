"""UE mobility: walk paths driving automatic handover.

Ties the store-floor geometry to the network: a mobile UE follows a
:class:`~repro.apps.scenario.WalkPath`; every update interval the
manager re-evaluates the serving cell by distance and hands the UE over
to the closest eNodeB, with a hysteresis margin so cell-edge users do
not ping-pong.  The D2D subscriber position (and hence discovery and
localisation) moves along automatically when a customer app is bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.apps.scenario import Position, WalkPath

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.retail import RetailCustomerApp
    from repro.core.network import MobileNetwork
    from repro.epc.ue import UEDevice


@dataclass
class MobileUser:
    """One walking UE."""

    ue: "UEDevice"
    walk: WalkPath
    started_at: float
    customer: Optional["RetailCustomerApp"] = None
    handovers: list[tuple[float, str, str]] = field(default_factory=list)
    #: True while an (asynchronous) handover procedure is in flight
    handover_in_flight: bool = False

    def position_at(self, now: float) -> Position:
        return self.walk.position_at(now - self.started_at)

    @property
    def finished(self) -> bool:
        return False    # the manager decides based on walk duration


class MobilityManager:
    """Periodic position updates + distance-based handover decisions."""

    def __init__(self, network: "MobileNetwork",
                 enb_positions: dict[str, Position],
                 update_interval: float = 1.0,
                 hysteresis: float = 3.0,
                 hysteresis_db: float = 0.0,
                 path_loss_exponent: float = 3.0) -> None:
        """``hysteresis`` is the metres by which a neighbour cell must
        be closer before a handover is triggered (A3-offset analog).

        ``hysteresis_db`` expresses the same A3 offset in received-power
        terms: under a log-distance path-loss model with exponent
        ``path_loss_exponent``, the neighbour must look
        ``10 * n * log10(d_serving / d_neighbour)`` dB stronger before
        the handover fires.  Both margins must be met.  The default of
        ``0.0`` dB disables the power criterion, preserving the
        distance-only behaviour.
        """
        unknown = set(enb_positions) - set(network.enbs)
        if unknown:
            raise ValueError(f"positions given for unknown eNodeBs: "
                             f"{sorted(unknown)}")
        if update_interval <= 0:
            raise ValueError("update interval must be positive")
        if hysteresis_db < 0:
            raise ValueError("hysteresis_db must be >= 0")
        if path_loss_exponent <= 0:
            raise ValueError("path_loss_exponent must be positive")
        self.network = network
        self.enb_positions = dict(enb_positions)
        self.update_interval = update_interval
        self.hysteresis = hysteresis
        self.hysteresis_db = hysteresis_db
        self.path_loss_exponent = path_loss_exponent
        self.users: dict[str, MobileUser] = {}

    # -- registration ---------------------------------------------------------

    def add_mobile(self, ue: "UEDevice", walk: WalkPath,
                   customer: Optional["RetailCustomerApp"] = None
                   ) -> MobileUser:
        user = MobileUser(ue=ue, walk=walk,
                          started_at=self.network.sim.now,
                          customer=customer)
        self.users[ue.name] = user
        self._tick(user)
        return user

    def remove_mobile(self, ue_name: str) -> None:
        self.users.pop(ue_name, None)

    # -- the update loop ---------------------------------------------------------

    def _tick(self, user: MobileUser) -> None:
        if self.users.get(user.ue.name) is not user:
            return      # removed (or replaced) -> stop ticking
        now = self.network.sim.now
        position = user.position_at(now)
        if user.customer is not None:
            user.customer.move_to(position)
        self._maybe_handover(user, position)
        elapsed = now - user.started_at
        if elapsed < user.walk.duration:
            self.network.sim.schedule(self.update_interval, self._tick,
                                      user)

    def _distance_to(self, enb_name: str, position: Position) -> float:
        x, y = self.enb_positions[enb_name]
        return ((position[0] - x) ** 2 + (position[1] - y) ** 2) ** 0.5

    def best_cell(self, position: Position) -> str:
        return min(self.enb_positions,
                   key=lambda name: self._distance_to(name, position))

    def _maybe_handover(self, user: MobileUser, position: Position) -> None:
        ue = user.ue
        if user.handover_in_flight:
            return      # one signalling procedure per UE at a time
        if not ue.rrc_connected:
            return      # idle-mode reselection is out of scope
        current = self.network.mme.context(ue.imsi).enb.name
        if current not in self.enb_positions:
            return
        best = self.best_cell(position)
        if best == current:
            return
        d_current = self._distance_to(current, position)
        d_best = self._distance_to(best, position)
        if d_current - d_best < self.hysteresis:
            return
        if self.hysteresis_db > 0.0:
            gain_db = self._gain_db(d_current, d_best)
            if gain_db < self.hysteresis_db:
                return
        # run the handover as a process: the tick loop (and every other
        # user's signalling) keeps going while this one's is in flight
        user.handover_in_flight = True
        self.network.sim.spawn(self._handover_proc(user, current, best),
                               name=f"mobility-ho:{ue.name}")

    def _gain_db(self, d_current: float, d_best: float) -> float:
        """Neighbour-over-serving received-power advantage in dB under
        log-distance path loss (zero-distance clamps avoid a log blowup
        when the UE stands on an antenna)."""
        d_current = max(d_current, 1e-3)
        d_best = max(d_best, 1e-3)
        return (10.0 * self.path_loss_exponent
                * math.log10(d_current / d_best))

    def _handover_proc(self, user: MobileUser, current: str, best: str):
        try:
            yield self.network.handover_async(user.ue, best)
            user.handovers.append((self.network.sim.now, current, best))
        finally:
            user.handover_in_flight = False
