"""The AR front-end: the on-device half of the AR application.

Reads frames from the camera, resizes/encodes them (grayscale JPEG, as
Section 6.3 describes) and uploads them to the AR back-end over the
mobile network; collects per-frame latency breakdowns when responses
come back.  The session is closed-loop: the next frame is captured when
the previous response arrives (never faster than the camera).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.epc.events import DownlinkDelivered
from repro.vision.camera import CameraModel, Resolution
from repro.vision.codec import CompressionModel, JPEG90
from repro.vision.features import Frame
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.ue import UEDevice
    from repro.sim.engine import Simulator

_session_ids = itertools.count(1)

#: Port the AR back-end listens on.
AR_SERVER_PORT = 9000


@dataclass
class FrameRecord:
    """Latency breakdown of one completed frame round-trip."""

    frame_seq: int
    matched: Optional[str]
    encode_time: float
    decode_time: float
    surf_time: float
    match_time: float
    total_time: float           # capture -> response arrival

    @property
    def compute_time(self) -> float:
        """Encode + decode + SURF: the Figure 13 'Compute' bar."""
        return self.encode_time + self.decode_time + self.surf_time

    @property
    def network_time(self) -> float:
        """Everything that is not compute or matching: transport."""
        return max(0.0, self.total_time - self.compute_time
                   - self.match_time)


class ARFrontend:
    """Frame capture + encode pipeline."""

    def __init__(self, resolution: Resolution,
                 codec: CompressionModel = JPEG90,
                 camera: Optional[CameraModel] = None,
                 scene_complexity: float = 1.0) -> None:
        self.resolution = resolution
        self.codec = codec
        self.camera = camera if camera is not None else CameraModel()
        self.scene_complexity = scene_complexity

    @property
    def frame_bytes(self) -> int:
        return self.codec.frame_bytes(self.resolution,
                                      self.scene_complexity)

    @property
    def encode_time(self) -> float:
        return self.codec.encode_time(self.resolution)

    @property
    def min_frame_interval(self) -> float:
        return self.camera.frame_interval(self.resolution)


class ARSession:
    """Closed-loop AR exchange between a UE and a CI server."""

    def __init__(self, sim: "Simulator", ue: "UEDevice", server_ip: str,
                 frontend: ARFrontend, frames: Iterable[Frame],
                 max_frames: Optional[int] = None,
                 on_complete: Optional[Callable[["ARSession"], None]] = None
                 ) -> None:
        self.sim = sim
        self.ue = ue
        self.server_ip = server_ip
        self.frontend = frontend
        self._frames = iter(frames)
        self.max_frames = max_frames
        self.on_complete = on_complete
        self.session_id = next(_session_ids)
        self.flow_id = f"ar-session-{self.session_id}"
        self.records: list[FrameRecord] = []
        self._seq = 0
        self._inflight: dict[int, tuple[float, Frame]] = {}
        self._finished = False
        self._subscription = sim.hooks.on(DownlinkDelivered,
                                          self._on_downlink)

    # -- control ---------------------------------------------------------

    def start(self, at: float = 0.0) -> None:
        """Begin capturing at absolute sim time ``at`` (or now if past)."""
        self.sim.schedule(max(0.0, at - self.sim.now), self._capture_next)

    def _capture_next(self) -> None:
        if self._finished:
            return
        if self.max_frames is not None and self._seq >= self.max_frames:
            self._finish()
            return
        try:
            frame = next(self._frames)
        except StopIteration:
            self._finish()
            return
        self._seq += 1
        capture_time = self.sim.now
        encode_time = self.frontend.encode_time
        self.sim.schedule(encode_time, self._upload, frame, capture_time)

    def _upload(self, frame: Frame, capture_time: float) -> None:
        packet = Packet(
            src=self.ue.ip, dst=self.server_ip,
            size=self.frontend.frame_bytes, protocol="UDP",
            src_port=40000 + self.session_id, dst_port=AR_SERVER_PORT,
            flow_id=self.flow_id,
            created_at=self.sim.now,
            meta={"frame": frame, "frame_seq": self._seq,
                  "user_id": self.ue.name})
        self._inflight[self._seq] = (capture_time, frame)
        self.ue.send_app(packet)

    def _on_downlink(self, event: DownlinkDelivered) -> None:
        # server replies echo the request's flow id, so the bus filter
        # is exact: our UE and our session only
        if event.ue is not self.ue:
            return
        packet = event.packet
        if packet.flow_id != self.flow_id:
            return
        seq = packet.meta.get("frame_seq")
        entry = self._inflight.pop(seq, None) if seq is not None else None
        if entry is None:
            return
        capture_time, _ = entry
        self.records.append(FrameRecord(
            frame_seq=seq,
            matched=packet.meta.get("matched"),
            encode_time=self.frontend.encode_time,
            decode_time=packet.meta.get("decode_time", 0.0),
            surf_time=packet.meta.get("surf_time", 0.0),
            match_time=packet.meta.get("match_time", 0.0),
            total_time=self.sim.now - capture_time))
        # closed loop, but never faster than the camera can produce
        next_in = max(0.0, self.frontend.min_frame_interval
                      - (self.sim.now - capture_time))
        self.sim.schedule(next_in, self._capture_next)

    def close(self) -> None:
        """Detach the session from the hook bus.  Idempotent."""
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.close()
        if self.on_complete is not None:
            self.on_complete(self)

    # -- results ------------------------------------------------------------

    def mean_breakdown(self) -> dict[str, float]:
        """Per-frame means of the Figure 13 bars."""
        if not self.records:
            return {"match": 0.0, "compute": 0.0, "network": 0.0,
                    "total": 0.0}
        n = len(self.records)
        return {
            "match": sum(r.match_time for r in self.records) / n,
            "compute": sum(r.compute_time for r in self.records) / n,
            "network": sum(r.network_time for r in self.records) / n,
            "total": sum(r.total_time for r in self.records) / n,
        }
