"""A Reno-lite congestion-controlled transport.

The paper's background loads and data-plane tests are iperf *TCP*
flows; :class:`~repro.sim.traffic.GreedySource` models only the steady
state (a fixed window).  This module adds the dynamics: slow start,
congestion avoidance (AIMD), retransmission timeouts with exponential
backoff, and an RTT estimator -- enough for flows to probe for
bandwidth, back off on queue drops and share a bottleneck.

The receiver side is :class:`TcpSink`, which acknowledges every data
packet individually (SACK-like semantics: the sender tracks per-segment
delivery, so reordering does not confuse it).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

_flow_ids = itertools.count(1)

#: Initial retransmission timeout (seconds) before an RTT sample exists.
INITIAL_RTO = 1.0
#: Linux-style RTO floor: prevents spurious timeouts while slow start
#: inflates the queueing delay faster than the estimator adapts.
MIN_RTO = 0.2
MAX_RTO = 8.0
#: SACK-style loss inference: a segment is presumed lost once this many
#: later segments have been acknowledged.
DUP_THRESHOLD = 3


class TcpSource(Node):
    """Reno-lite sender."""

    def __init__(self, sim: "Simulator", name: str, dst: str,
                 packet_size: int = 1400, port: str = "out",
                 ip: Optional[str] = None, qci: Optional[int] = None,
                 initial_cwnd: float = 2.0,
                 max_cwnd: float = 512.0,
                 total_packets: Optional[int] = None) -> None:
        super().__init__(sim, name, ip)
        self.dst = dst
        self.packet_size = packet_size
        self.out_port = port
        self.qci = qci
        self.flow_id = f"tcp-{next(_flow_ids)}"
        self.total_packets = total_packets
        # congestion state
        self.cwnd = initial_cwnd            # in packets (fractional ok)
        self.ssthresh = max_cwnd
        self.max_cwnd = max_cwnd
        # sequence bookkeeping
        self._next_seq = 0
        self._inflight: dict[int, float] = {}       # seq -> send time
        self._timers: dict[int, object] = {}        # seq -> Event
        self._delivered: set[int] = set()
        self._retransmitted: set[int] = set()       # Karn's algorithm
        self._dup_counts: dict[int, int] = {}
        self._last_decrease = -1.0
        # RTT estimation (Jacobson/Karels)
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = INITIAL_RTO
        # stats
        self.packets_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.bytes_acked = 0
        self.started_at: Optional[float] = None
        self.cwnd_trace: list[tuple[float, float]] = []

    # -- control -----------------------------------------------------------

    def start(self, at: float = 0.0) -> None:
        self.sim.schedule(at, self._launch)

    def _launch(self) -> None:
        self.started_at = self.sim.now
        self._fill_window()

    def stop(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self.total_packets = self.packets_sent    # no new segments

    # -- sending --------------------------------------------------------------

    def _window_room(self) -> bool:
        return len(self._inflight) < int(self.cwnd)

    def _done_sending(self) -> bool:
        return (self.total_packets is not None
                and self._next_seq >= self.total_packets)

    def _fill_window(self) -> None:
        while self._window_room() and not self._done_sending():
            self._send_segment(self._next_seq)
            self._next_seq += 1

    def _send_segment(self, seq: int, retransmit: bool = False) -> None:
        packet = Packet(src=self.ip, dst=self.dst, size=self.packet_size,
                        protocol="TCP", src_port=46000, dst_port=5201,
                        flow_id=self.flow_id, qci=self.qci,
                        created_at=self.sim.now,
                        meta={"seq": seq})
        self._inflight[seq] = self.sim.now
        old = self._timers.pop(seq, None)
        if old is not None:
            old.cancel()
        self._timers[seq] = self.sim.schedule(self.rto, self._on_timeout,
                                              seq)
        self.packets_sent += 1
        if retransmit:
            self.retransmits += 1
            self._retransmitted.add(seq)
        self.send(self.out_port, packet)

    # -- receiving acks ----------------------------------------------------------

    def on_receive(self, packet: Packet, link: "Link") -> None:
        seq = packet.meta.get("ack")
        if seq is None or seq in self._delivered:
            return
        sent_at = self._inflight.pop(seq, None)
        timer = self._timers.pop(seq, None)
        if timer is not None:
            timer.cancel()
        self._delivered.add(seq)
        self._dup_counts.pop(seq, None)
        self.bytes_acked += self.packet_size
        if sent_at is not None and seq not in self._retransmitted:
            # Karn: never sample RTT from a retransmitted segment
            self._update_rtt(self.sim.now - sent_at)
        self._grow_window()
        self._detect_losses(seq)
        self._fill_window()

    def _detect_losses(self, acked_seq: int) -> None:
        """SACK-style inference: segments overtaken by DUP_THRESHOLD
        later acks are retransmitted without waiting for the RTO."""
        for seq in list(self._inflight):
            if seq >= acked_seq:
                continue
            count = self._dup_counts.get(seq, 0) + 1
            self._dup_counts[seq] = count
            if count >= DUP_THRESHOLD:
                self._fast_retransmit(seq)

    def _fast_retransmit(self, seq: int) -> None:
        self._dup_counts.pop(seq, None)
        if seq not in self._inflight:
            return
        # multiplicative decrease, at most once per RTT (Reno-style)
        now = self.sim.now
        rtt = self.srtt if self.srtt is not None else self.rto
        if now - self._last_decrease > rtt:
            self.ssthresh = max(2.0, self.cwnd / 2)
            self.cwnd = self.ssthresh
            self._last_decrease = now
            self.cwnd_trace.append((now, self.cwnd))
        del self._inflight[seq]
        self._send_segment(seq, retransmit=True)

    def _update_rtt(self, sample: float) -> None:
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = float(min(MAX_RTO, max(MIN_RTO,
                                          self.srtt + 4 * self.rttvar)))

    def _grow_window(self) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.max_cwnd, self.cwnd + 1.0)   # slow start
        else:
            self.cwnd = min(self.max_cwnd,
                            self.cwnd + 1.0 / max(self.cwnd, 1.0))
        self.cwnd_trace.append((self.sim.now, self.cwnd))

    # -- loss ---------------------------------------------------------------------

    def _on_timeout(self, seq: int) -> None:
        if seq in self._delivered or seq not in self._inflight:
            return
        self.timeouts += 1
        # multiplicative decrease + slow-start restart (Tahoe-style)
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 1.0
        self.cwnd_trace.append((self.sim.now, self.cwnd))
        self.rto = float(min(MAX_RTO, self.rto * 2))    # backoff
        del self._inflight[seq]
        self._send_segment(seq, retransmit=True)

    # -- stats -----------------------------------------------------------------------

    @property
    def delivered_packets(self) -> int:
        return len(self._delivered)

    def goodput(self, now: Optional[float] = None) -> float:
        if self.started_at is None:
            return 0.0
        elapsed = (now if now is not None else self.sim.now) - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.bytes_acked * 8 / elapsed

    @property
    def complete(self) -> bool:
        return (self.total_packets is not None
                and self.delivered_packets >= self.total_packets)


class TcpSink(Node):
    """Acknowledges every received data segment."""

    def __init__(self, sim: "Simulator", name: str,
                 ip: Optional[str] = None, ack_size: int = 40) -> None:
        super().__init__(sim, name, ip)
        self.ack_size = ack_size
        self.received_seqs: set[int] = set()
        self.bytes_received = 0

    def on_receive(self, packet: Packet, link: "Link") -> None:
        seq = packet.meta.get("seq")
        if seq is None:
            return
        self.received_seqs.add(seq)
        self.bytes_received += packet.size
        ack = Packet(src=self.ip, dst=packet.src, size=self.ack_size,
                     protocol="TCP", src_port=packet.dst_port,
                     dst_port=packet.src_port, flow_id=packet.flow_id,
                     qci=packet.qci, created_at=self.sim.now,
                     meta={"ack": seq})
        port = self.port_for_link(link)
        if port is not None:
            self.send(port, ack)
