"""Discrete-event network simulation substrate.

This package provides the event engine, packet/link/node primitives,
traffic generators, measurement probes and empirical WAN models on which
the LTE/EPC, SDN and ACACIA layers are built.

The engine is deliberately small and deterministic: a pluggable
scheduler (a two-lane fast path -- zero-delay FIFO plus hierarchical
timer wheel -- or the reference binary heap, see
:mod:`repro.sim.scheduler`) dispatches timestamped callbacks in exact
``(time, priority, seq)`` order, with optional generator-based
processes on top.  Both schedulers execute every workload in the
identical order, so switching them changes wall-clock only.  All
randomness is injected through :class:`numpy.random.Generator`
instances so every experiment in the repository is reproducible from a
seed.
"""

from repro.sim.context import SimContext, derive_seed
from repro.sim.engine import Event, Process, Simulator
from repro.sim.fluid import FluidDomain, FluidFlow, FluidLink, FluidQueue
from repro.sim.hooks import (HookBus, PacketDelivered, PacketDropped,
                             Subscription)
from repro.sim.link import Link
from repro.sim.monitor import FlowStats, LatencyProbe, ThroughputMeter
from repro.sim.node import Node, PacketSink
from repro.sim.packet import Header, Packet
from repro.sim.shard import (Conduit, ShardPort, ShardSpec,
                             ShardedSimulator, run_isolated)
from repro.sim.tcp import TcpSink, TcpSource
from repro.sim.traffic import CBRSource, GreedySource, PoissonSource
from repro.sim.wan import LTE_WAN_PROFILES, WANProfile

__all__ = [
    "CBRSource",
    "Conduit",
    "Event",
    "FlowStats",
    "FluidDomain",
    "FluidFlow",
    "FluidLink",
    "FluidQueue",
    "GreedySource",
    "Header",
    "HookBus",
    "LatencyProbe",
    "Link",
    "LTE_WAN_PROFILES",
    "Node",
    "Packet",
    "PacketDelivered",
    "PacketDropped",
    "PacketSink",
    "PoissonSource",
    "Process",
    "ShardPort",
    "ShardSpec",
    "ShardedSimulator",
    "SimContext",
    "Simulator",
    "Subscription",
    "TcpSink",
    "TcpSource",
    "ThroughputMeter",
    "WANProfile",
    "derive_seed",
    "run_isolated",
]
