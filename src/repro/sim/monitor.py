"""Measurement probes: latency samples, throughput windows, flow stats."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.hooks import PacketDelivered, PacketDropped, Subscription

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event
    from repro.sim.node import Node
    from repro.sim.packet import Packet


class _BusProbe:
    """Shared subscription plumbing for the measurement probes.

    A probe can be driven two ways: directly (pass it as a sink's
    ``on_packet`` callback) or by subscribing it to the simulation's
    hook bus with :meth:`subscribe`, optionally filtered to one node.
    ``close()`` detaches the subscription either way.

    Probes can also self-sample on a period: :meth:`start_polling` arms
    a repeating timer (the timer event is re-armed in place each poll,
    so it rides the scheduler's timer wheel without allocating) and
    appends one :meth:`snapshot` dict to :attr:`polls` per interval.
    """

    def __init__(self) -> None:
        self._subscription: Optional[Subscription] = None
        self._node_filter: Optional["Node"] = None
        self.poll_interval: Optional[float] = None
        self.polls: list[dict] = []
        self._poll_event: Optional["Event"] = None

    def subscribe(self, node: Optional["Node"] = None):
        """Observe :class:`PacketDelivered` events on the sim's bus.

        ``node`` restricts the probe to packets delivered at that node.
        Returns ``self`` so construction and wiring chain naturally.
        """
        if self._subscription is not None:
            raise RuntimeError(f"{type(self).__name__} is already subscribed")
        self._node_filter = node
        self._subscription = self.sim.hooks.on(PacketDelivered,
                                               self._on_delivered)
        return self

    def _on_delivered(self, event: PacketDelivered) -> None:
        if self._node_filter is not None and event.node is not self._node_filter:
            return
        self(event.packet)

    # -- periodic self-sampling -------------------------------------------

    def start_polling(self, interval: float):
        """Record a :meth:`snapshot` every ``interval`` simulated seconds.

        Returns ``self`` so it chains with :meth:`subscribe`.
        """
        if interval <= 0:
            raise ValueError("poll interval must be positive")
        if self._poll_event is not None:
            raise RuntimeError(f"{type(self).__name__} is already polling")
        self.poll_interval = interval
        self._poll_event = self.sim.schedule(interval, self._poll)
        return self

    def _poll(self) -> None:
        self.polls.append(self.snapshot())
        self._poll_event = self._poll_event.reschedule(self.poll_interval)

    def snapshot(self) -> dict:
        """One poll sample; subclasses override with their counters."""
        return {"t": self.sim.now}

    def close(self) -> None:
        """Stop observing.  Idempotent; direct callers are unaffected."""
        if self._subscription is not None:
            self._subscription.close()
            self._subscription = None
        if self._poll_event is not None:
            self._poll_event.cancel()
            self._poll_event = None


@dataclass
class FlowStats:
    """Per-flow counters accumulated by probes."""

    packets: int = 0
    bytes: int = 0
    drops: int = 0
    latencies: list[float] = field(default_factory=list)

    def record(self, packet: "Packet", now: float) -> None:
        self.packets += 1
        self.bytes += packet.wire_size
        self.latencies.append(now - packet.created_at)

    @property
    def loss_rate(self) -> float:
        total = self.packets + self.drops
        return self.drops / total if total else 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies, q)) if self.latencies else 0.0


class LatencyProbe(_BusProbe):
    """Collects one-way (or round-trip) delay samples keyed by flow id.

    Attach via a sink's ``on_packet`` callback:

    >>> probe = LatencyProbe(sim)
    >>> sink = PacketSink(sim, "sink", on_packet=probe)   # doctest: +SKIP

    or observe the whole simulation through the hook bus:

    >>> probe = LatencyProbe(sim).subscribe(node=sink)    # doctest: +SKIP

    Packets dropped mid-flight never reach the sink, so latency
    samples alone under-report: call :meth:`watch_drops` to also count
    per-flow ``drops`` (and per-reason totals in ``lost_reasons``) off
    the bus's :class:`~repro.sim.hooks.PacketDropped` events.
    """

    def __init__(self, sim) -> None:
        super().__init__()
        self.sim = sim
        self.flows: dict[str, FlowStats] = {}
        self.samples = 0
        self.lost = 0
        self.lost_reasons: dict[str, int] = {}
        self._drop_subscription: Optional[Subscription] = None
        # flow_id -> (packets folded, bytes folded) for fluid flows
        self._fluid_marks: dict[str, tuple[int, int]] = {}

    def __call__(self, packet: "Packet") -> None:
        stats = self.flows.setdefault(packet.flow_id, FlowStats())
        stats.record(packet, self.sim.now)
        self.samples += 1

    def watch_drops(self):
        """Also count :class:`PacketDropped` events, keyed by flow.

        Returns ``self`` so it chains with :meth:`subscribe`.
        """
        if self._drop_subscription is not None:
            raise RuntimeError(f"{type(self).__name__} already watches drops")
        self._drop_subscription = self.sim.hooks.on(PacketDropped,
                                                    self._on_dropped)
        return self

    def _on_dropped(self, event: PacketDropped) -> None:
        # a synthesized aggregate drop (fluid data plane) stands in for
        # many packets; its weight rides in the packet metadata
        count = event.packet.meta.get("fluid_packets", 1)
        stats = self.flows.setdefault(event.packet.flow_id, FlowStats())
        stats.drops += count
        self.lost += count
        self.lost_reasons[event.reason] = \
            self.lost_reasons.get(event.reason, 0) + count

    def fold_fluid(self, flow) -> None:
        """Fold a :class:`~repro.sim.fluid.FluidFlow`'s byte counters
        into its :class:`FlowStats`.

        Incremental and idempotent: each call adds only the packets and
        bytes delivered since the previous fold.  Fluid flows carry no
        per-packet timestamps, so they contribute no latency samples;
        their drops arrive as aggregate
        :class:`~repro.sim.hooks.PacketDropped` events and are counted
        by :meth:`watch_drops` like any other drop.
        """
        flow.sync()
        stats = self.flows.setdefault(flow.flow_id, FlowStats())
        prev_packets, prev_bytes = self._fluid_marks.get(flow.flow_id,
                                                         (0, 0))
        packets = flow.packets_delivered
        delivered = int(flow.bytes_delivered)
        stats.packets += packets - prev_packets
        stats.bytes += delivered - prev_bytes
        self.samples += packets - prev_packets
        self._fluid_marks[flow.flow_id] = (packets, delivered)

    def snapshot(self) -> dict:
        """Per-poll counters (cheap: no per-flow scan)."""
        return {"t": self.sim.now, "samples": self.samples,
                "lost": self.lost}

    def close(self) -> None:
        super().close()
        if self._drop_subscription is not None:
            self._drop_subscription.close()
            self._drop_subscription = None

    def all_latencies(self) -> list[float]:
        samples: list[float] = []
        for stats in self.flows.values():
            samples.extend(stats.latencies)
        return samples

    def flow(self, flow_id: str) -> FlowStats:
        return self.flows.setdefault(flow_id, FlowStats())


class ThroughputMeter(_BusProbe):
    """Windowed throughput series measured at a sink.

    Call :meth:`observe` for every delivered packet (directly or via
    :meth:`subscribe`); :meth:`series` returns
    `(window_start_times, bits_per_second)` arrays, the exact shape
    plotted in Figure 8.

    All statistics are maintained incrementally -- one dict update and
    two counter adds per packet, never a scan over the recorded series
    -- so the meter stays O(1) per packet at flood rates, and
    :meth:`mean_throughput` only touches the skipped warm-up windows.
    """

    def __init__(self, sim, window: float = 1.0) -> None:
        super().__init__()
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.window = window
        self.total_bytes = 0
        self.total_packets = 0
        self._buckets: dict[int, float] = {}
        self._last_bucket = -1
        # flow_id -> (checkpoints consumed, packets folded) per flow
        self._fluid_marks: dict[str, tuple[int, int]] = {}

    def observe(self, packet: "Packet") -> None:
        bucket = int(self.sim.now / self.window)
        buckets = self._buckets
        buckets[bucket] = buckets.get(bucket, 0) + packet.size
        if bucket > self._last_bucket:
            self._last_bucket = bucket
        self.total_bytes += packet.size
        self.total_packets += 1

    def __call__(self, packet: "Packet") -> None:
        self.observe(packet)

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        if self._last_bucket < 0:
            return np.array([]), np.array([])
        last = self._last_bucket
        times = np.arange(0, last + 1) * self.window
        bps = np.array([self._buckets.get(i, 0) * 8 / self.window
                        for i in range(last + 1)], dtype=float)
        return times, bps

    def fold_fluid(self, flow) -> None:
        """Fold a :class:`~repro.sim.fluid.FluidFlow`'s deliveries into
        the windowed series.

        A fluid flow's delivery is piecewise linear between its solve
        checkpoints; each segment's bytes are spread across the windows
        it overlaps, so :meth:`series` and :meth:`mean_throughput` show
        the same curve a per-packet sink would have produced (bucket
        totals become floats).  Incremental and idempotent: each call
        consumes only checkpoints recorded since the previous fold.
        """
        flow.sync()
        points = flow.delivery_checkpoints()
        idx, folded_packets = self._fluid_marks.get(flow.flow_id, (1, 0))
        window = self.window
        buckets = self._buckets
        for i in range(max(idx, 1), len(points)):
            t0, b0 = points[i - 1]
            t1, b1 = points[i]
            seg_bytes = b1 - b0
            if seg_bytes <= 0.0 or t1 <= t0:
                continue
            for w in range(int(t0 / window), int(t1 / window) + 1):
                lo = max(t0, w * window)
                hi = min(t1, (w + 1) * window)
                if hi <= lo:
                    continue
                buckets[w] = (buckets.get(w, 0)
                              + seg_bytes * (hi - lo) / (t1 - t0))
                if w > self._last_bucket:
                    self._last_bucket = w
            self.total_bytes += seg_bytes
        packets = flow.packets_delivered
        self.total_packets += packets - folded_packets
        self._fluid_marks[flow.flow_id] = (max(len(points), 1), packets)

    def snapshot(self) -> dict:
        """Per-poll totals (incremental counters, no series rebuild)."""
        return {"t": self.sim.now, "bytes": self.total_bytes,
                "packets": self.total_packets}

    def mean_throughput(self, skip_first: int = 1) -> float:
        """Mean bits/sec over the series, skipping warm-up windows.

        Computed from the running totals minus the skipped windows:
        O(``skip_first``), not O(series length).
        """
        last = self._last_bucket
        if last < 0:
            return 0.0
        windows = last + 1
        if windows <= skip_first:
            return self.total_bytes * 8 / self.window / windows
        buckets = self._buckets
        skipped = sum(buckets.get(i, 0) for i in range(skip_first))
        return ((self.total_bytes - skipped) * 8 / self.window
                / (windows - skip_first))
