"""Measurement probes: latency samples, throughput windows, flow stats."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.packet import Packet


@dataclass
class FlowStats:
    """Per-flow counters accumulated by probes."""

    packets: int = 0
    bytes: int = 0
    latencies: list[float] = field(default_factory=list)

    def record(self, packet: Packet, now: float) -> None:
        self.packets += 1
        self.bytes += packet.wire_size
        self.latencies.append(now - packet.created_at)

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies, q)) if self.latencies else 0.0


class LatencyProbe:
    """Collects one-way (or round-trip) delay samples keyed by flow id.

    Attach via a sink's ``on_packet`` callback:

    >>> probe = LatencyProbe(sim)
    >>> sink = PacketSink(sim, "sink", on_packet=probe)   # doctest: +SKIP
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.flows: dict[str, FlowStats] = {}

    def __call__(self, packet: Packet) -> None:
        stats = self.flows.setdefault(packet.flow_id, FlowStats())
        stats.record(packet, self.sim.now)

    def all_latencies(self) -> list[float]:
        samples: list[float] = []
        for stats in self.flows.values():
            samples.extend(stats.latencies)
        return samples

    def flow(self, flow_id: str) -> FlowStats:
        return self.flows.setdefault(flow_id, FlowStats())


class ThroughputMeter:
    """Windowed throughput series measured at a sink.

    Call :meth:`observe` for every delivered packet; :meth:`series`
    returns `(window_start_times, bits_per_second)` arrays, the exact
    shape plotted in Figure 8.
    """

    def __init__(self, sim, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.sim = sim
        self.window = window
        self._buckets: dict[int, int] = {}

    def observe(self, packet: Packet) -> None:
        bucket = int(self.sim.now / self.window)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + packet.size

    def __call__(self, packet: Packet) -> None:
        self.observe(packet)

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._buckets:
            return np.array([]), np.array([])
        last = max(self._buckets)
        times = np.arange(0, last + 1) * self.window
        bps = np.array([self._buckets.get(i, 0) * 8 / self.window
                        for i in range(last + 1)], dtype=float)
        return times, bps

    def mean_throughput(self, skip_first: int = 1) -> float:
        """Mean bits/sec over the series, skipping warm-up windows."""
        _, bps = self.series()
        if len(bps) <= skip_first:
            return float(np.mean(bps)) if len(bps) else 0.0
        return float(np.mean(bps[skip_first:]))
