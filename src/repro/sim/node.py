"""Base network-node abstractions.

A :class:`Node` owns a set of named ports, each attached to a
:class:`~repro.sim.link.Link`.  Subclasses implement :meth:`on_receive`
to process arriving packets; forwarding is done by writing to a port.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.sim.hooks import PacketDelivered
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link


class Node:
    """A device attached to the simulated network."""

    def __init__(self, sim: "Simulator", name: str,
                 ip: Optional[str] = None) -> None:
        self.sim = sim
        self.name = name
        self.ip = ip or name
        self.ports: dict[str, "Link"] = {}
        self.rx_count = 0
        self.tx_count = 0

    def attach(self, port: str, link: "Link") -> None:
        """Bind a named port to a link endpoint."""
        self.ports[port] = link
        link.register_endpoint(self)

    def send(self, port: str, packet: Packet) -> None:
        """Transmit a packet out of a named port."""
        link = self.ports.get(port)
        if link is None:
            raise KeyError(f"{self.name}: no port named {port!r}")
        self.tx_count += 1
        link.transmit(self, packet)

    def receive(self, packet: Packet, link: "Link") -> None:
        """Entry point called by links; dispatches to :meth:`on_receive`."""
        self.rx_count += 1
        self.on_receive(packet, link)

    def on_receive(self, packet: Packet, link: "Link") -> None:
        """Process an arriving packet.  Default: drop silently."""

    def port_for_link(self, link: "Link") -> Optional[str]:
        """Reverse lookup: the port name a link is attached to."""
        for port, candidate in self.ports.items():
            if candidate is link:
                return port
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class PacketSink(Node):
    """Terminal node that records arrivals and can auto-reply.

    Useful both as a traffic sink (throughput measurements) and as a
    ping/echo responder (RTT measurements) when ``echo=True``.
    """

    def __init__(self, sim: "Simulator", name: str, ip: Optional[str] = None,
                 echo: bool = False,
                 on_packet: Optional[Callable[[Packet], None]] = None):
        super().__init__(sim, name, ip)
        self.echo = echo
        self.on_packet = on_packet
        self.received: list[Packet] = []
        self.bytes_received = 0
        self.arrival_times: list[float] = []
        # delivered-hook verdict cached against the bus subscription
        # generation -- this runs once per delivered packet
        self._delivered_hook_gen = -1
        self._delivered_hook_hot = False

    def on_receive(self, packet: Packet, link: "Link") -> None:
        self.received.append(packet)
        self.bytes_received += packet.wire_size
        self.arrival_times.append(self.sim.now)
        hooks = self.sim.hooks
        if hooks.generation != self._delivered_hook_gen:
            self._delivered_hook_gen = hooks.generation
            self._delivered_hook_hot = hooks.has(PacketDelivered)
        if self._delivered_hook_hot:
            hooks.emit(PacketDelivered(node=self, packet=packet, link=link))
        if self.on_packet is not None:
            self.on_packet(packet)
        if self.echo:
            reply = packet.copy()
            reply.src, reply.dst = packet.dst, packet.src
            reply.src_port, reply.dst_port = packet.dst_port, packet.src_port
            reply.meta["echo_of"] = packet.packet_id
            port = self.port_for_link(link)
            if port is not None:
                self.send(port, reply)
