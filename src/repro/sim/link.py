"""Point-to-point duplex link with queueing.

Each direction of the link has its own transmitter and a finite drop-tail
queue.  Serialization delay is ``wire_size * 8 / bandwidth`` and
propagation delay is constant, so a congested direction builds queueing
delay exactly the way Figure 3(g)/10(b) of the paper measures it.

When ``qos_priority=True`` the queue is a strict-priority queue keyed by
the packet's QCI priority (see :mod:`repro.epc.qos`): this is what lets a
dedicated bearer with a better QCI overtake best-effort background
traffic on a shared link (Figure 10(a)).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.sim.hooks import PacketDropped
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.node import Node

#: Default queue capacity per direction (bytes); roughly 100 full-size
#: Ethernet frames, a typical shallow router buffer.
DEFAULT_QUEUE_BYTES = 150_000

#: QCI -> scheduling priority used when qos_priority is enabled.  Filled
#: lazily from repro.epc.qos to avoid a circular import; packets without
#: a QCI get the lowest priority.
_BEST_EFFORT_PRIORITY = 100


class _Direction:
    """Transmitter + queue for one direction of a link."""

    def __init__(self, link: "Link") -> None:
        self.link = link
        self.bandwidth = link.bandwidth     # overridden per direction
        self.peer: Optional["Node"] = None  # set when both ends register
        self.busy = False
        self.queued_bytes = 0
        self.drops = 0
        self.tx_packets = 0
        self.tx_bytes = 0
        self._fifo: deque[Packet] = deque()
        self._prio_heap: list[tuple[int, int, Packet]] = []
        self._seq = itertools.count()

    def enqueue(self, packet: Packet) -> bool:
        if self.queued_bytes + packet.wire_size > self.link.queue_bytes:
            self.drops += 1
            return False
        self.queued_bytes += packet.wire_size
        if self.link.qos_priority:
            heapq.heappush(
                self._prio_heap,
                (self.link.priority_of(packet), next(self._seq), packet))
        else:
            self._fifo.append(packet)
        return True

    def dequeue(self) -> Optional[Packet]:
        if self.link.qos_priority:
            if not self._prio_heap:
                return None
            _, _, packet = heapq.heappop(self._prio_heap)
        else:
            if not self._fifo:
                return None
            packet = self._fifo.popleft()
        self.queued_bytes -= packet.wire_size
        return packet

    @property
    def queue_depth(self) -> int:
        return len(self._fifo) + len(self._prio_heap)


class Link:
    """Duplex link between exactly two nodes.

    Parameters
    ----------
    bandwidth:
        Capacity per direction in bits/second.
    delay:
        One-way propagation delay in seconds.
    queue_bytes:
        Drop-tail buffer size per direction.
    qos_priority:
        Enable strict-priority scheduling by QCI priority.
    jitter:
        Optional per-packet propagation jitter: each packet's delay is
        ``delay + Uniform(0, jitter)`` drawn from ``rng``.  Models radio
        scheduling/HARQ variability.
    bandwidth_reverse:
        Optional capacity of the reverse direction (from the *second*
        attached endpoint toward the first).  Default: symmetric.  An
        LTE radio link is the canonical asymmetric case (uplink out of
        the UE is far slower than the downlink toward it).
    """

    def __init__(self, sim: "Simulator", name: str, bandwidth: float,
                 delay: float, queue_bytes: int = DEFAULT_QUEUE_BYTES,
                 qos_priority: bool = False, jitter: float = 0.0,
                 rng=None, bandwidth_reverse=None) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if bandwidth_reverse is not None and bandwidth_reverse <= 0:
            raise ValueError("reverse bandwidth must be positive")
        if delay < 0:
            raise ValueError("delay must be non-negative")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.bandwidth_reverse = (bandwidth_reverse
                                  if bandwidth_reverse is not None
                                  else bandwidth)
        self.delay = delay
        self.jitter = jitter
        self.rng = rng
        self.queue_bytes = queue_bytes
        self.qos_priority = qos_priority
        self.up = True
        self.drop_counts: dict[str, int] = {}
        self._endpoints: list["Node"] = []
        self._directions: dict[int, _Direction] = {}
        self._qci_priorities: dict[int, int] = {}
        # pre-bound propagation sampler: the jitter branch is decided
        # once at construction, not once per transmitted packet
        self._propagation = (self._propagation_jittered if jitter > 0
                             else self._propagation_fixed)
        # drop-hook verdict cached against the bus subscription
        # generation (a dict probe per drop became one int compare)
        self._drop_hook_gen = -1
        self._drop_hook_hot = False

    # -- failure injection --------------------------------------------------

    def set_up(self, up: bool) -> None:
        """Bring the link up or down (fibre cut / radio loss).

        While down, transmissions are silently dropped and counted;
        packets already in flight still arrive (they left the wire
        before the cut).
        """
        self.up = up

    # -- wiring ---------------------------------------------------------

    def register_endpoint(self, node: "Node") -> None:
        if node in self._endpoints:
            return
        if len(self._endpoints) >= 2:
            raise ValueError(f"link {self.name} already has two endpoints")
        self._endpoints.append(node)
        direction = _Direction(self)
        # forward direction (out of the first endpoint) uses
        # ``bandwidth``; the reverse uses ``bandwidth_reverse``
        direction.bandwidth = (self.bandwidth if len(self._endpoints) == 1
                               else self.bandwidth_reverse)
        self._directions[id(node)] = direction
        if len(self._endpoints) == 2:
            first, second = self._endpoints
            self._directions[id(first)].peer = second
            self._directions[id(second)].peer = first

    def other_end(self, node: "Node") -> "Node":
        if len(self._endpoints) != 2:
            raise ValueError(f"link {self.name} is not fully wired")
        if node is self._endpoints[0]:
            return self._endpoints[1]
        if node is self._endpoints[1]:
            return self._endpoints[0]
        raise ValueError(f"{node!r} is not attached to link {self.name}")

    def set_qci_priority(self, qci: int, priority: int) -> None:
        """Register the scheduling priority for a QCI (lower wins)."""
        self._qci_priorities[qci] = priority

    def priority_of(self, packet: Packet) -> int:
        if packet.qci is None:
            return _BEST_EFFORT_PRIORITY
        return self._qci_priorities.get(packet.qci, _BEST_EFFORT_PRIORITY)

    # -- data path --------------------------------------------------------

    def transmit(self, sender: "Node", packet: Packet) -> None:
        """Queue a packet for transmission from ``sender`` to the peer."""
        direction = self._directions.get(id(sender))
        if direction is None:
            raise ValueError(
                f"{sender!r} is not attached to link {self.name}")
        if not self.up:
            self._signal_drop(packet, sender, "link-down")
            return
        if not direction.busy and direction.queued_bytes == 0:
            # idle direction, empty queue: enqueue-then-dequeue would
            # hand back this same packet, so transmit it directly
            wire_size = packet.wire_size
            if wire_size > self.queue_bytes:
                direction.drops += 1
                self._signal_drop(packet, sender, "queue-overflow")
                return
            self._transmit_packet(direction, packet, wire_size)
            return
        if not direction.enqueue(packet):
            self._signal_drop(packet, sender, "queue-overflow")
            return  # drop-tail
        if not direction.busy:
            self._start_transmission(direction)

    @property
    def dropped_while_down(self) -> int:
        """Packets dropped because the link was administratively down."""
        return self.drop_counts.get("link-down", 0)

    def _signal_drop(self, packet: Packet, sender: "Node",
                     reason: str) -> None:
        self.drop_counts[reason] = self.drop_counts.get(reason, 0) + 1
        hooks = self.sim.hooks
        if hooks.generation != self._drop_hook_gen:
            self._drop_hook_gen = hooks.generation
            self._drop_hook_hot = hooks.has(PacketDropped)
        if self._drop_hook_hot:
            hooks.emit(PacketDropped(link=self, packet=packet,
                                     sender=sender, reason=reason))

    def _propagation_fixed(self) -> float:
        return self.delay

    def _propagation_jittered(self) -> float:
        return self.delay + float(self.rng.uniform(0.0, self.jitter))

    def _start_transmission(self, direction: _Direction) -> None:
        packet = direction.dequeue()
        if packet is None:
            direction.busy = False
            return
        self._transmit_packet(direction, packet, packet.wire_size)

    def _transmit_packet(self, direction: _Direction, packet: Packet,
                         wire_size: int) -> None:
        receiver = direction.peer
        if receiver is None:
            raise ValueError(f"link {self.name} is not fully wired")
        direction.busy = True
        tx_time = wire_size * 8 / direction.bandwidth
        direction.tx_packets += 1
        direction.tx_bytes += wire_size
        # internal pooled scheduling: neither handle escapes the link,
        # so a saturated link allocates no Event objects in steady state
        sim = self.sim
        sim._schedule_internal(tx_time + self._propagation(),
                               receiver.receive, packet, self)
        sim._schedule_internal(tx_time, self._start_transmission, direction)

    # -- stats ------------------------------------------------------------

    def stats(self, node: "Node") -> dict:
        """Per-direction counters for the direction *out of* ``node``."""
        direction = self._directions[id(node)]
        return {
            "tx_packets": direction.tx_packets,
            "tx_bytes": direction.tx_bytes,
            "drops": direction.drops,
            "queued_bytes": direction.queued_bytes,
            "queue_depth": direction.queue_depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Link {self.name} {self.bandwidth/1e6:.1f}Mbps "
                f"{self.delay*1e3:.2f}ms>")
