"""Pluggable event schedulers for the discrete-event engine.

Every scheduler implements the same total order -- events execute in
``(time, priority, seq)`` order, ties broken by insertion sequence --
but they differ in how much work each ``push``/``pop`` costs:

:class:`ReferenceScheduler`
    The original design: one binary heap of :class:`~repro.sim.engine.Event`
    records compared through ``Event.__lt__``.  Every push and pop pays
    ``O(log n)`` *Python-level* comparisons.  Kept as the semantic
    reference for differential tests and benchmarks.

:class:`FastScheduler`
    The default.  Three cooperating lanes:

    * a **now lane** -- a plain FIFO for ``schedule(0.0, ...)`` events at
      default priority.  These dominate event volume (process steps,
      future settlement, ``run_until_complete`` stepping) and need no
      ordering work at all: the FIFO is sorted by construction, because
      simulated time never decreases and sequence numbers only grow.
    * a **hierarchical timer wheel** -- timed events land in a fine
      bucket of width ``granularity`` (or a coarse bucket ``slots``
      fine-widths wide when far in the future).  Insertion and
      cancellation are O(1) list appends/flag writes; a bucket is sorted
      *once*, with the C sort, when the clock reaches it.  Timers that
      are cancelled before they expire -- the common case for
      retransmission guards -- never cost a single comparison.
    * a **heap fallback** -- events that cannot ride the wheel (slots the
      cursor already passed, non-default-priority zero delays) go to a
      binary heap of ``(time, priority, seq, event)`` tuples, so sifting
      compares tuples in C instead of calling ``Event.__lt__``.

    The next event is the least, under the full ``(time, priority,
    seq)`` key, of the three lane heads; a wheel bucket is flushed
    whenever its lower bound could precede the current best candidate,
    which is what makes the merge exact rather than approximate.

Scheduler choice is threaded through
:class:`repro.core.config.SimConfig`; the ``REPRO_SIM_SCHEDULER``
environment variable overrides the default for whole test runs (the
differential suite uses it to replay identical workloads on both
implementations).
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import TYPE_CHECKING, Any, Optional, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event

_INF = float("inf")

#: Names accepted by :func:`build_scheduler` (and ``SimConfig.scheduler``).
SCHEDULER_NAMES = ("fast", "reference")

#: Fallback when neither the caller nor the environment chooses.
DEFAULT_SCHEDULER = "fast"


def build_scheduler(spec: Union[str, None, "SchedulerBase"] = None,
                    granularity: float = 1e-4,
                    slots: int = 1024) -> "SchedulerBase":
    """Resolve a scheduler choice to an instance.

    ``spec`` may be an instance (returned as-is), a name from
    :data:`SCHEDULER_NAMES`, or ``None`` -- which defers to the
    ``REPRO_SIM_SCHEDULER`` environment variable and finally to
    :data:`DEFAULT_SCHEDULER`.
    """
    if spec is not None and not isinstance(spec, str):
        return spec
    name = spec or os.environ.get("REPRO_SIM_SCHEDULER") or DEFAULT_SCHEDULER
    if name == "fast":
        return FastScheduler(granularity=granularity, slots=slots)
    if name == "reference":
        return ReferenceScheduler()
    raise ValueError(f"unknown scheduler {name!r}; "
                     f"expected one of {SCHEDULER_NAMES}")


class SchedulerBase:
    """Interface shared by the scheduler implementations."""

    name = "base"

    def push(self, event: "Event", zero_delay: bool = False) -> None:
        raise NotImplementedError

    def pop_due(self, until: Optional[float] = None) -> Optional["Event"]:
        """Remove and return the next live event, or ``None``.

        With ``until`` set, an event strictly later than ``until`` is
        left in place and ``None`` is returned (the run loop then parks
        the clock at ``until``).
        """
        raise NotImplementedError

    def next_time_lower_bound(self) -> float:
        """A lower bound on the next live event's time (``inf`` if none).

        O(1) and side-effect-free: implementations may return a bound
        that is earlier than the true next event time (a cancelled head,
        an unflushed wheel bucket), never later.  Real-time pacers use
        it to sleep through idle gaps without disturbing the queue --
        see :meth:`repro.sim.engine.Simulator.next_event_time`.
        """
        raise NotImplementedError

    def profile(self) -> dict:
        raise NotImplementedError


class ReferenceScheduler(SchedulerBase):
    """The original single-heap scheduler (``Event.__lt__`` ordering).

    Cancelled events stay in the heap and are skipped when popped --
    exactly the pre-refactor behaviour, preserved as the ground truth
    the fast scheduler is differentially tested against.
    """

    name = "reference"

    def __init__(self) -> None:
        self._heap: list["Event"] = []
        self._pushed = 0
        self._skipped = 0
        self.heap_peak = 0

    def push(self, event: "Event", zero_delay: bool = False) -> None:
        heapq.heappush(self._heap, event)
        self._pushed += 1
        if len(self._heap) > self.heap_peak:
            self.heap_peak = len(self._heap)

    def pop_due(self, until: Optional[float] = None) -> Optional["Event"]:
        heap = self._heap
        while heap:
            event = heap[0]
            if event.cancelled:
                heapq.heappop(heap)
                event._popped = True
                self._skipped += 1
                continue
            if until is not None and event.time > until:
                return None
            heapq.heappop(heap)
            event._popped = True
            return event
        return None

    def next_time_lower_bound(self) -> float:
        """Exact for the reference heap, modulo a cancelled head."""
        return self._heap[0].time if self._heap else _INF

    def profile(self) -> dict:
        return {
            "lanes": {"heap": self._pushed},
            "heap_peak": self.heap_peak,
            "cancelled_discarded": self._skipped,
        }


class FastScheduler(SchedulerBase):
    """Two-lane scheduler: now-lane FIFO + timer wheel + heap fallback.

    Parameters
    ----------
    granularity:
        Width of a fine wheel bucket in simulated seconds.  Timers that
        land within ``slots`` buckets of the cursor go to the fine
        wheel; the default (0.1 ms x 1024 slots, a ~102 ms span) keeps
        every data-plane serialization/propagation timer and CBR tick
        in the repository on the wheel -- sub-slot re-arms that land in
        the bucket currently being consumed are the only data-plane
        events that fall back to the heap.
    slots:
        Fine buckets per coarse bucket.  Events beyond the fine span
        (retransmission guards seconds out, monitor polls) wait in a
        coarse bucket and cascade into fine buckets when the clock
        approaches -- cancelled ones are discarded at cascade/flush time
        without ever entering an ordered structure.
    """

    name = "fast"

    __slots__ = ("_gran", "_span", "_coarse_width", "_now_lane", "_heap",
                 "_runlist", "_ri", "_wheel", "_wheel_heap", "_coarse",
                 "_coarse_heap", "_cursor", "_next_lb", "_n_now", "_n_wheel",
                 "_n_heap", "_flushes", "_cascades", "_skipped", "heap_peak",
                 "wheel_peak")

    def __init__(self, granularity: float = 1e-4, slots: int = 1024) -> None:
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        if slots < 2:
            raise ValueError("slots must be >= 2")
        self._gran = float(granularity)
        self._span = int(slots)
        self._coarse_width = self._gran * self._span
        self._now_lane: deque["Event"] = deque()
        self._heap: list[tuple] = []        # (time, priority, seq, Event)
        self._runlist: list[tuple] = []     # flushed bucket, sorted
        self._ri = 0                        # runlist consumption index
        self._wheel: dict[int, list["Event"]] = {}
        self._wheel_heap: list[int] = []    # occupied fine buckets
        self._coarse: dict[int, list["Event"]] = {}
        self._coarse_heap: list[int] = []   # occupied coarse buckets
        self._cursor = -1                   # last flushed fine bucket
        # lower bound of the earliest pending wheel bucket (fine or
        # coarse): the pop fast path compares one float against it
        # instead of peeking both occupancy heaps
        self._next_lb = float("inf")
        self._n_now = 0
        self._n_wheel = 0
        self._n_heap = 0
        self._flushes = 0
        self._cascades = 0
        self._skipped = 0
        self.heap_peak = 0
        self.wheel_peak = 0

    # -- insertion -------------------------------------------------------

    def push(self, event: "Event", zero_delay: bool = False) -> None:
        if zero_delay and event.priority == 0:
            self._now_lane.append(event)
            self._n_now += 1
            return
        gran = self._gran
        time = event.time
        slot = int(time / gran)
        # float guards: division and multiplication round independently,
        # so clamp until slot*gran <= time < (slot+1)*gran under the
        # *same* multiplications the flush comparisons use -- otherwise
        # an event can sort against the wrong bucket lower bound
        if slot * gran > time:
            slot -= 1
        elif (slot + 1) * gran <= time:
            slot += 1
        cursor = self._cursor
        if cursor < slot < cursor + self._span:
            # fine wheel: the hot path for every data-plane timer
            self._n_wheel += 1
            bucket = self._wheel.get(slot)
            if bucket is not None:
                bucket.append(event)
                return
            self._wheel[slot] = [event]
            heapq.heappush(self._wheel_heap, slot)
            lb = slot * gran
            if lb < self._next_lb:
                self._next_lb = lb
            return
        if slot <= cursor:
            # the wheel already swept past this bucket (an event landing
            # in the bucket currently being consumed, or a priority!=0
            # zero-delay): the tuple heap preserves exact order
            heap = self._heap
            heapq.heappush(heap, (time, event.priority, event.seq, event))
            self._n_heap += 1
            if len(heap) > self.heap_peak:
                self.heap_peak = len(heap)
        else:
            self._n_wheel += 1
            cslot = slot // self._span
            width = self._coarse_width              # same float guards
            if cslot * width > time:
                cslot -= 1
            elif (cslot + 1) * width <= time:
                cslot += 1
            bucket = self._coarse.get(cslot)
            if bucket is None:
                self._coarse[cslot] = [event]
                heapq.heappush(self._coarse_heap, cslot)
                clb = cslot * width
                if clb < self._next_lb:
                    self._next_lb = clb
            else:
                bucket.append(event)

    # -- wheel maintenance ----------------------------------------------

    def _recompute_lb(self) -> None:
        """Refresh the cached lower bound after a flush or cascade."""
        wheel_heap = self._wheel_heap
        coarse_heap = self._coarse_heap
        if wheel_heap:
            lb = wheel_heap[0] * self._gran
            if coarse_heap:
                clb = coarse_heap[0] * self._coarse_width
                if clb < lb:
                    lb = clb
        elif coarse_heap:
            lb = coarse_heap[0] * self._coarse_width
        else:
            lb = _INF
        self._next_lb = lb

    def _advance(self) -> None:
        """Open the wheel bucket whose lower bound is ``_next_lb``.

        Coarse buckets cascade before fine buckets flush (a coarse
        bucket strictly earlier than the fine head may hide events that
        belong in earlier fine buckets).
        """
        coarse_heap = self._coarse_heap
        wheel_heap = self._wheel_heap
        if coarse_heap and (not wheel_heap
                            or coarse_heap[0] * self._coarse_width
                            < wheel_heap[0] * self._gran):
            self._cascade()
        else:
            self._flush()
        self._recompute_lb()

    def _flush(self) -> None:
        """Move the earliest fine bucket onto the sorted run list."""
        slot = heapq.heappop(self._wheel_heap)
        bucket = self._wheel.pop(slot)
        self._cursor = slot
        if len(bucket) > self.wheel_peak:
            self.wheel_peak = len(bucket)
        live = []
        for event in bucket:
            if event.cancelled:
                event._popped = True
                self._skipped += 1
            else:
                live.append((event.time, event.priority, event.seq, event))
        live.sort()
        self._runlist = live
        self._ri = 0
        self._flushes += 1

    def _cascade(self) -> None:
        """Spill the earliest coarse bucket into fine buckets."""
        cslot = heapq.heappop(self._coarse_heap)
        bucket = self._coarse.pop(cslot)
        self._cascades += 1
        gran = self._gran
        cursor = self._cursor
        wheel = self._wheel
        for event in bucket:
            if event.cancelled:
                event._popped = True
                self._skipped += 1
                continue
            time = event.time
            slot = int(time / gran)
            if slot * gran > time:
                slot -= 1
            elif (slot + 1) * gran <= time:
                slot += 1
            if slot <= cursor:
                heapq.heappush(self._heap,
                               (time, event.priority, event.seq, event))
            else:
                fine = wheel.get(slot)
                if fine is None:
                    wheel[slot] = [event]
                    heapq.heappush(self._wheel_heap, slot)
                else:
                    fine.append(event)

    # -- extraction ------------------------------------------------------

    def pop_due(self, until: Optional[float] = None) -> Optional["Event"]:
        # hot path: a live run-list head with no competing now-lane or
        # heap entry wins outright.  No barrier check is needed: every
        # run-list time is below its bucket's upper bound, later pushes
        # land in buckets at or above the next lower bound, and the
        # now lane is empty -- so nothing pending can precede it.
        ri = self._ri
        runlist = self._runlist
        if ri < len(runlist) and not self._now_lane and not self._heap:
            entry = runlist[ri]
            event = entry[3]
            if not event.cancelled:
                if until is not None and entry[0] > until:
                    return None
                self._ri = ri + 1
                event._popped = True
                return event
        return self._pop_slow(until)

    def _pop_slow(self, until: Optional[float]) -> Optional["Event"]:
        while True:
            # normalise the three lane heads (skip cancelled events)
            lane = self._now_lane
            while lane:
                head = lane[0]
                if head.cancelled:
                    lane.popleft()
                    head._popped = True
                    self._skipped += 1
                else:
                    break
            fifo_head = lane[0] if lane else None

            runlist = self._runlist
            ri = self._ri
            n_run = len(runlist)
            while ri < n_run:
                entry = runlist[ri]
                if entry[3].cancelled:
                    entry[3]._popped = True
                    self._skipped += 1
                    ri += 1
                else:
                    break
            self._ri = ri
            run_head = runlist[ri] if ri < n_run else None

            heap = self._heap
            while heap:
                entry = heap[0]
                if entry[3].cancelled:
                    heapq.heappop(heap)
                    entry[3]._popped = True
                    self._skipped += 1
                else:
                    break
            heap_head = heap[0] if heap else None

            # least of the three heads under (time, priority, seq)
            best = None
            source = 0
            if fifo_head is not None:
                best = (fifo_head.time, fifo_head.priority, fifo_head.seq,
                        fifo_head)
                source = 1
            if run_head is not None and (best is None or run_head < best):
                best = run_head
                source = 2
            if heap_head is not None and (best is None or heap_head < best):
                best = heap_head
                source = 3

            # a wheel bucket whose lower bound could precede the best
            # candidate must be opened first -- it may hide an earlier
            # event.  ``_next_lb`` caches min(fine lb, coarse lb), so
            # the common case is a single float compare.  The slot
            # guards in push() keep every bucketed event strictly below
            # the next bucket's lower bound, so advancing on ``<=``
            # never discards a live run-list entry.
            nlb = self._next_lb
            if best is None:
                if nlb == _INF:
                    return None
                if until is not None and nlb > until:
                    return None        # nothing pending at or before until
                self._advance()
                continue
            best_time = best[0]
            if nlb <= best_time:
                self._advance()
                continue
            if until is not None and best_time > until:
                return None
            event = best[3]
            if source == 1:
                lane.popleft()
            elif source == 2:
                self._ri = self._ri + 1
            else:
                heapq.heappop(heap)
            event._popped = True
            return event

    def next_time_lower_bound(self) -> float:
        """Min over the four lane heads, without opening any bucket.

        A lower bound only: the now-lane/run-list/heap heads may be
        cancelled, and ``_next_lb`` is a wheel *bucket* bound rather
        than an event time -- both make the result early, never late.
        """
        lb = self._next_lb
        lane = self._now_lane
        if lane and lane[0].time < lb:
            lb = lane[0].time
        runlist = self._runlist
        if self._ri < len(runlist) and runlist[self._ri][0] < lb:
            lb = runlist[self._ri][0]
        if self._heap and self._heap[0][0] < lb:
            lb = self._heap[0][0]
        return lb

    def profile(self) -> dict:
        return {
            "lanes": {"now": self._n_now, "wheel": self._n_wheel,
                      "heap": self._n_heap},
            "heap_peak": self.heap_peak,
            "wheel": {
                "granularity": self._gran,
                "slots": self._span,
                "flushes": self._flushes,
                "cascades": self._cascades,
                "bucket_peak": self.wheel_peak,
            },
            "cancelled_discarded": self._skipped,
        }
