"""Traffic generators.

Three source models cover everything the evaluation needs:

* :class:`CBRSource` -- constant bit rate, used for the paper's iperf
  background-traffic loads (Figures 3(g) and 10(b));
* :class:`PoissonSource` -- Poisson packet arrivals for stochastic load;
* :class:`GreedySource` -- a closed-loop, window-based sender that ramps
  until it saturates the path, standing in for the iperf TCP test that
  Figure 8 drives through the gateway data planes.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.context import SimContext
    from repro.sim.engine import Simulator
    from repro.sim.link import Link

_flow_ids = itertools.count(1)

#: Default simulated MTU-sized payload (bytes).
DEFAULT_PACKET_SIZE = 1400


def _resolve_rng(name: str, rng: Optional[np.random.Generator],
                 ctx: Optional["SimContext"],
                 stream: Optional[str]) -> Optional[np.random.Generator]:
    """Resolve a source's generator from a named context stream.

    The preferred spelling is ``ctx=...`` (plus an optional ``stream``
    name, defaulting to ``traffic.<source name>``), which draws from
    the :class:`~repro.sim.context.SimContext`'s seed-derived stream
    tree like the rest of the stack -- two sources can then never
    perturb each other's randomness.  A bare ``rng=...`` generator is
    still accepted for self-contained unit use.
    """
    if rng is not None:
        if ctx is not None:
            raise ValueError("pass either rng or ctx, not both")
        if stream is not None:
            raise ValueError("stream requires a ctx")
        return rng
    if ctx is not None:
        return ctx.rng(stream if stream is not None else f"traffic.{name}")
    if stream is not None:
        raise ValueError("stream requires a ctx")
    return None


class CBRSource(Node):
    """Constant-bit-rate UDP source out of a single port."""

    def __init__(self, sim: "Simulator", name: str, dst: str,
                 rate: float, packet_size: int = DEFAULT_PACKET_SIZE,
                 port: str = "out", ip: Optional[str] = None,
                 qci: Optional[int] = None,
                 dst_port: int = 5001) -> None:
        super().__init__(sim, name, ip)
        if rate <= 0:
            raise ValueError("rate must be positive bits/sec")
        self.dst = dst
        self.rate = rate
        self.packet_size = packet_size
        self.out_port = port
        self.qci = qci
        self.dst_port = dst_port
        self.flow_id = f"cbr-{next(_flow_ids)}"
        self.packets_sent = 0
        self._timer = None
        self._interval = packet_size * 8 / rate

    def start(self, at: float = 0.0) -> None:
        self._timer = self.sim.schedule(at, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        packet = Packet(src=self.ip, dst=self.dst, size=self.packet_size,
                        protocol="UDP", src_port=40000,
                        dst_port=self.dst_port, flow_id=self.flow_id,
                        qci=self.qci, created_at=self.sim.now)
        self.send(self.out_port, packet)
        self.packets_sent += 1
        # re-arm the just-fired timer event in place: a CBR flood then
        # allocates zero Event objects in steady state
        self._timer = self._timer.reschedule(self._interval)


class PoissonSource(Node):
    """Poisson arrivals at a mean rate (bits/sec).

    Randomness comes from a named :class:`~repro.sim.context.SimContext`
    stream (``ctx=..., stream="traffic.<id>"`` by default) or, for
    self-contained use, an explicit ``rng`` generator.
    """

    def __init__(self, sim: "Simulator", name: str, dst: str,
                 rate: float, rng: Optional[np.random.Generator] = None,
                 packet_size: int = DEFAULT_PACKET_SIZE,
                 port: str = "out", ip: Optional[str] = None,
                 qci: Optional[int] = None,
                 ctx: Optional["SimContext"] = None,
                 stream: Optional[str] = None) -> None:
        super().__init__(sim, name, ip)
        if rate <= 0:
            raise ValueError("rate must be positive bits/sec")
        rng = _resolve_rng(name, rng, ctx, stream)
        if rng is None:
            raise ValueError("PoissonSource needs a ctx (preferred) or rng")
        self.dst = dst
        self.rate = rate
        self.rng = rng
        self.packet_size = packet_size
        self.out_port = port
        self.qci = qci
        self.flow_id = f"poisson-{next(_flow_ids)}"
        self.packets_sent = 0
        self._timer = None
        self._mean_interval = packet_size * 8 / rate

    def start(self, at: float = 0.0) -> None:
        self._timer = self.sim.schedule(at, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        packet = Packet(src=self.ip, dst=self.dst, size=self.packet_size,
                        protocol="UDP", src_port=40001, dst_port=5001,
                        flow_id=self.flow_id, qci=self.qci,
                        created_at=self.sim.now)
        self.send(self.out_port, packet)
        self.packets_sent += 1
        gap = self.rng.exponential(self._mean_interval)
        self._timer = self._timer.reschedule(gap)


class GreedySource(Node):
    """Closed-loop window-based sender (an iperf-TCP stand-in).

    Keeps ``window`` packets in flight; every acknowledgement (echoed
    packet arriving back) releases the next transmission, so the achieved
    rate converges to the bottleneck capacity of the path including any
    per-packet processing delays at intermediate data planes.  The far
    end must be a :class:`~repro.sim.node.PacketSink` with ``echo=True``.
    """

    def __init__(self, sim: "Simulator", name: str, dst: str,
                 packet_size: int = DEFAULT_PACKET_SIZE, window: int = 64,
                 port: str = "out", ip: Optional[str] = None,
                 qci: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None,
                 ctx: Optional["SimContext"] = None,
                 stream: Optional[str] = None,
                 ack_jitter: float = 0.0) -> None:
        super().__init__(sim, name, ip)
        if ack_jitter < 0:
            raise ValueError("ack_jitter must be non-negative")
        self.dst = dst
        self.packet_size = packet_size
        self.window = window
        self.out_port = port
        self.qci = qci
        # optional sender-side pacing jitter (models host scheduling
        # noise); with ack_jitter == 0 the source is fully deterministic
        # and never touches the stream
        self.rng = _resolve_rng(name, rng, ctx, stream)
        self.ack_jitter = ack_jitter
        if ack_jitter > 0 and self.rng is None:
            raise ValueError("ack_jitter requires a ctx or rng")
        self.flow_id = f"greedy-{next(_flow_ids)}"
        self.packets_sent = 0
        self.acks_received = 0
        self.bytes_acked = 0
        self.started_at: Optional[float] = None

    def start(self, at: float = 0.0) -> None:
        self.sim.schedule(at, self._launch)

    def _launch(self) -> None:
        self.started_at = self.sim.now
        for _ in range(self.window):
            self._send_one()

    def _send_one(self) -> None:
        packet = Packet(src=self.ip, dst=self.dst, size=self.packet_size,
                        protocol="TCP", src_port=40002, dst_port=5201,
                        flow_id=self.flow_id, qci=self.qci,
                        created_at=self.sim.now)
        self.send(self.out_port, packet)
        self.packets_sent += 1

    def on_receive(self, packet: Packet, link: "Link") -> None:
        self.acks_received += 1
        self.bytes_acked += packet.size
        if self.ack_jitter > 0:
            self.sim.schedule(float(self.rng.uniform(0.0, self.ack_jitter)),
                              self._send_one)
        else:
            self._send_one()

    def goodput(self, now: Optional[float] = None) -> float:
        """Acknowledged payload rate in bits/sec since start."""
        if self.started_at is None:
            return 0.0
        elapsed = (now if now is not None else self.sim.now) - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.bytes_acked * 8 / elapsed
