"""Sharded parallel simulation with conservative WAN-lookahead sync.

One discrete-event world is partitioned into *shards* -- independent
:class:`~repro.sim.engine.Simulator` instances (one per edge site in
the ACACIA fabric), each owning its site's eNodeBs, UEs, gateways and
MEC pod -- connected by *conduits*: directed pairs with a known
minimum propagation delay (the inter-site WAN links, whose latency is
the natural lookahead a Chandy-Misra-Bryant-style conservative scheme
needs).

Window protocol
---------------

The coordinator advances every shard through a sequence of global
time windows ``W_0 = 0 < W_1 <= W_2 <= ...``:

1. each shard reports ``nb_i = sim.next_event_time()`` -- a lower
   bound that may be early but never late (see
   :meth:`~repro.sim.engine.Simulator.next_event_time`);
2. the coordinator computes ``base = min(nb_i, pending envelope
   delivery times)`` and opens the next window
   ``W_{k+1} = min(T_end, max(W_k, base) + L)`` where ``L`` is the
   *lookahead*: the minimum conduit delay;
3. every shard injects its inbox (envelopes sorted canonically),
   runs ``sim.run(until=W_{k+1})`` and replies with its new bound and
   the envelopes it sent.

Safety: an event processed inside window ``k+1`` has time
``t >= max(W_k, base)``, so any envelope it emits delivers at
``t + delay >= max(W_k, base) + L = W_{k+1}`` (when ``W_{k+1}`` was
not clipped at ``T_end``; clipping only shrinks windows, which is
always safe) -- at or after the window every peer has already run to,
never in a peer's past.  Liveness: each round with work advances the
window by at least ``L > 0``, so a horizon needs at most
``T_end / L`` plus an envelope-drain tail of rounds -- two shards
with zero cross traffic cannot deadlock.

Determinism
-----------

Envelopes carry the sender's ``(deliver_time, priority, src_index,
seq)`` key; every inbox is sorted on exactly that key before
injection, and injection order fixes the receiver's event sequence
numbers, so the merged execution order is canonical.  The ``inline``
backend steps the very same federation in one process (shards in
index order per window); the ``process`` backend runs one OS process
per shard.  Both execute the identical window schedule with identical
envelope flows, so their results are byte-identical -- the
differential tests assert it on canonical JSON.

Cross-shard payloads must be plain JSON-able data (dicts, lists,
numbers, strings): they cross a ``multiprocessing`` pipe and must
mean the same thing in both backends.

This module is part of ``repro.sim`` and depends only on the stdlib:
shard *builders* (which may construct whole
:class:`~repro.core.network.MobileNetwork` worlds) are supplied by
higher layers as picklable module-level callables.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

__all__ = [
    "Conduit",
    "ShardPort",
    "ShardSpec",
    "ShardedSimulator",
    "canonical_digest",
    "run_isolated",
]

#: Environment marker set inside shard/isolated child processes, so
#: host-side dispatchers (the exp runner) never recurse into another
#: layer of process isolation.
SHARD_CHILD_ENV = "REPRO_SHARD_CHILD"

#: Hard cap on protocol rounds, as a guard against a mis-built
#: federation (e.g. a zero-lookahead loop slipping past validation).
#: Real runs need ~``T_end / lookahead`` rounds plus a short drain
#: tail; the guard is far above that.
_MAX_ROUND_SLACK = 64


def canonical_digest(value: Any) -> str:
    """SHA-256 of ``value``'s canonical JSON (sorted keys, no spaces).

    The byte-identity currency of the sharding layer: two runs are
    *identical* iff their results' canonical digests match.
    """
    text = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class Conduit:
    """An undirected inter-shard channel with a fixed minimum delay.

    Cross-shard messages between ``a`` and ``b`` (either direction)
    arrive exactly ``delay`` simulated seconds after they are sent;
    the smallest conduit delay in a federation is its lookahead.
    """

    a: str
    b: str
    delay: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"conduit endpoints must differ, got {self.a!r}")
        if self.delay <= 0:
            raise ValueError(
                f"conduit {self.a!r}<->{self.b!r} needs a positive delay "
                f"(it is the conservative lookahead), got {self.delay}")


@dataclass(frozen=True)
class ShardSpec:
    """One shard: a name plus a picklable builder and its kwargs.

    ``build(port, **kwargs)`` must be a module-level callable (it
    crosses a process boundary) returning the shard *app*: any object
    with

    * ``sim`` -- the shard's :class:`~repro.sim.engine.Simulator`;
    * ``deliver(src, payload)`` -- invoked at an envelope's delivery
      time with the sender shard's name and the payload;
    * ``collect()`` -- the shard's JSON-able result dict, called once
      after the horizon.

    The builder receives a :class:`ShardPort` for outbound traffic and
    must only *arm* initial events (attach storms, traffic schedules);
    it must not run the simulator -- time advances exclusively inside
    the window protocol.
    """

    name: str
    build: Callable[..., Any]
    kwargs: dict = field(default_factory=dict)


class ShardPort:
    """A shard's handle onto the conduit mesh.

    ``send(dst, payload, priority=0)`` timestamps an envelope with the
    sender's current simulated time plus the conduit delay and queues
    it for the coordinator to route at the end of the window.
    """

    def __init__(self, index: int, name: str,
                 delays: dict[str, float]) -> None:
        self.index = index
        self.name = name
        self._delays = dict(delays)
        self._sim = None
        self._seq = 0
        self.outbox: list[tuple] = []

    @property
    def peers(self) -> tuple[str, ...]:
        """Names of the shards this one has a conduit to, sorted."""
        return tuple(sorted(self._delays))

    def bind(self, sim) -> None:
        """Attach the shard's simulator (done once, after build)."""
        self._sim = sim

    def send(self, dst: str, payload: Any, priority: int = 0) -> None:
        """Emit ``payload`` toward shard ``dst`` over its conduit."""
        try:
            delay = self._delays[dst]
        except KeyError:
            raise ValueError(
                f"shard {self.name!r} has no conduit to {dst!r}; "
                f"peers: {list(self.peers)}") from None
        if self._sim is None:
            raise RuntimeError("port not bound to a simulator yet")
        seq = self._seq
        self._seq += 1
        self.outbox.append((self._sim.now + delay, priority, self.index,
                            seq, self.name, dst, payload))


def _envelope_key(envelope: tuple) -> tuple:
    """Canonical merge order: (deliver_time, priority, src_index, seq)."""
    return envelope[:4]


def _inject(app, port: ShardPort, inbox: Sequence[tuple]) -> None:
    """Schedule an inbox (already canonically sorted) for delivery.

    Injection order assigns the receiver's event sequence numbers, so
    sorting + in-order ``schedule_at`` makes the merge deterministic.
    """
    for deliver_time, priority, _src_index, _seq, src, _dst, payload \
            in inbox:
        app.sim.schedule_at(deliver_time, app.deliver, src, payload,
                            priority=priority)


def _advance(app, port: ShardPort, window: float,
             inbox: Sequence[tuple]) -> tuple[Optional[float], list[tuple]]:
    """One shard's side of a protocol round."""
    _inject(app, port, inbox)
    port.outbox = []
    app.sim.run(until=window)
    return app.sim.next_event_time(), port.outbox


# ---------------------------------------------------------------------------
# backends
# ---------------------------------------------------------------------------

class _InlineShard:
    """In-process shard: the single-process reference execution."""

    def __init__(self, index: int, spec: ShardSpec,
                 delays: dict[str, float]) -> None:
        self.port = ShardPort(index, spec.name, delays)
        self.app = spec.build(self.port, **spec.kwargs)
        self.port.bind(self.app.sim)
        self._reply: Any = None

    def ready_bound(self) -> Optional[float]:
        return self.app.sim.next_event_time()

    def post_advance(self, window: float, inbox: list[tuple]) -> None:
        self._reply = _advance(self.app, self.port, window, inbox)

    def recv_reply(self) -> tuple[Optional[float], list[tuple]]:
        return self._reply

    def post_finish(self, horizon: float) -> None:
        self.app.sim.run(until=horizon)
        self._reply = self.app.collect()

    def recv_result(self) -> dict:
        return self._reply

    def close(self) -> None:
        pass


def _shard_worker(conn, index: int, spec: ShardSpec,
                  delays: dict[str, float]) -> None:
    """Child-process main loop: build once, then serve protocol rounds."""
    os.environ[SHARD_CHILD_ENV] = "1"
    try:
        port = ShardPort(index, spec.name, delays)
        app = spec.build(port, **spec.kwargs)
        port.bind(app.sim)
        conn.send(("ready", app.sim.next_event_time()))
        while True:
            message = conn.recv()
            if message[0] == "advance":
                _op, window, inbox = message
                conn.send(("ok",) + _advance(app, port, window, inbox))
            elif message[0] == "finish":
                # park the clock exactly at the horizon: the last
                # window's end depends on scheduler lower bounds, the
                # horizon does not, so collected clocks stay
                # scheduler-invariant
                app.sim.run(until=message[1])
                conn.send(("result", app.collect()))
                return
            else:  # pragma: no cover - protocol misuse
                raise RuntimeError(f"unknown op {message[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def _mp_context():
    """Prefer ``fork`` (cheap, inherits the built code); fall back to
    ``spawn`` where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class _ProcessShard:
    """One shard in its own OS process, spoken to over a pipe."""

    def __init__(self, index: int, spec: ShardSpec,
                 delays: dict[str, float], ctx) -> None:
        self.name = spec.name
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_shard_worker, args=(child, index, spec, delays),
            name=f"shard-{spec.name}")
        self._proc.start()
        child.close()
        self._ready = self._recv()

    def _recv(self):
        try:
            message = self._conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard {self.name!r} process died without replying "
                f"(exitcode {self._proc.exitcode})") from None
        if message[0] == "error":
            raise RuntimeError(
                f"shard {self.name!r} failed:\n{message[1]}")
        return message[1:]

    def ready_bound(self) -> Optional[float]:
        return self._ready[0]

    def post_advance(self, window: float, inbox: list[tuple]) -> None:
        self._conn.send(("advance", window, inbox))

    def recv_reply(self) -> tuple[Optional[float], list[tuple]]:
        return self._recv()

    def post_finish(self, horizon: float) -> None:
        self._conn.send(("finish", horizon))

    def recv_result(self) -> dict:
        return self._recv()[0]

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover
            pass
        self._proc.join(timeout=10.0)
        if self._proc.is_alive():  # pragma: no cover - hung child
            self._proc.terminate()
            self._proc.join(timeout=10.0)


#: Execution backends: ``inline`` is the single-process reference,
#: ``process`` runs one OS process per shard.  Identical results.
BACKENDS = ("inline", "process")


class ShardedSimulator:
    """Coordinator for a federation of shards (see the module docs).

    Parameters
    ----------
    specs:
        One :class:`ShardSpec` per shard; order fixes shard indices
        (and therefore canonical envelope merge order), so callers
        must pass the same order in every backend.
    conduits:
        The inter-shard channels.  Shards without any conduit simply
        never exchange traffic; with *no* conduits at all the
        lookahead is infinite and the horizon runs in one window.
    backend:
        ``"inline"`` or ``"process"``.
    """

    def __init__(self, specs: Sequence[ShardSpec],
                 conduits: Sequence[Conduit] = (),
                 backend: str = "inline") -> None:
        if not specs:
            raise ValueError("at least one shard is required")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one "
                             f"of {BACKENDS}")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names in {names}")
        self.specs = list(specs)
        self.backend = backend
        self._index = {name: i for i, name in enumerate(names)}
        delays: list[dict[str, float]] = [{} for _ in specs]
        for conduit in conduits:
            for end in (conduit.a, conduit.b):
                if end not in self._index:
                    raise ValueError(f"conduit endpoint {end!r} is not a "
                                     f"shard; shards: {names}")
            delays[self._index[conduit.a]][conduit.b] = conduit.delay
            delays[self._index[conduit.b]][conduit.a] = conduit.delay
        self._delays = delays
        self.lookahead = min((c.delay for c in conduits),
                             default=float("inf"))
        # protocol statistics (backend-invariant, safe to embed in
        # byte-compared results)
        self.rounds = 0
        self.envelopes_sent = 0
        self.envelopes_dropped = 0
        self._shards: Optional[list] = None

    # -- lifecycle -------------------------------------------------------

    def _start(self) -> list:
        if self.backend == "inline":
            return [_InlineShard(i, spec, self._delays[i])
                    for i, spec in enumerate(self.specs)]
        ctx = _mp_context()
        shards = []
        try:
            for i, spec in enumerate(self.specs):
                shards.append(_ProcessShard(i, spec, self._delays[i], ctx))
        except BaseException:
            for shard in shards:
                shard.close()
            raise
        return shards

    def run(self, until: float) -> dict[str, dict]:
        """Advance every shard to simulated time ``until`` and collect.

        Returns ``{shard name: app.collect()}``.  One-shot: builds the
        shards, runs the window protocol to the horizon, gathers the
        results and tears the backend down.
        """
        t_end = float(until)
        if t_end < 0:
            raise ValueError(f"negative horizon {until}")
        shards = self._start()
        try:
            return self._drive(shards, t_end)
        finally:
            for shard in shards:
                shard.close()

    def _drive(self, shards: list, t_end: float) -> dict[str, dict]:
        bounds = [shard.ready_bound() for shard in shards]
        pending: list[list[tuple]] = [[] for _ in shards]
        window = 0.0
        max_rounds = _MAX_ROUND_SLACK + (
            0 if self.lookahead == float("inf")
            else int(4 * t_end / self.lookahead))
        while True:
            base = min(
                (b for b in bounds if b is not None),
                default=float("inf"))
            for box in pending:
                for envelope in box:
                    base = min(base, envelope[0])
            if base > t_end:
                break
            window = min(t_end, max(window, base) + self.lookahead)
            for i, shard in enumerate(shards):
                inbox = sorted(pending[i], key=_envelope_key)
                pending[i] = []
                shard.post_advance(window, inbox)
            for i, shard in enumerate(shards):
                bound, outbox = shard.recv_reply()
                bounds[i] = bound
                for envelope in outbox:
                    self.envelopes_sent += 1
                    if envelope[0] > t_end:
                        # undeliverable inside the horizon; dropped by
                        # the coordinator, identically in every backend
                        self.envelopes_dropped += 1
                        continue
                    pending[self._index[envelope[5]]].append(envelope)
            self.rounds += 1
            if self.rounds > max_rounds:
                raise RuntimeError(
                    f"window protocol exceeded {max_rounds} rounds "
                    f"(lookahead {self.lookahead}, horizon {t_end}); "
                    f"federation is mis-built")
        results = {}
        for shard in shards:
            shard.post_finish(t_end)
        for spec, shard in zip(self.specs, shards):
            results[spec.name] = shard.recv_result()
        return results

    def stats(self) -> dict[str, Any]:
        """Protocol counters (identical across backends)."""
        return {
            "backend": self.backend,
            "shards": len(self.specs),
            "lookahead": self.lookahead,
            "rounds": self.rounds,
            "envelopes_sent": self.envelopes_sent,
            "envelopes_dropped": self.envelopes_dropped,
        }


# ---------------------------------------------------------------------------
# degenerate single-shard isolation
# ---------------------------------------------------------------------------

def _isolated_entry(conn, fn, args) -> None:
    os.environ[SHARD_CHILD_ENV] = "1"
    try:
        conn.send(("ok", fn(*args)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


def in_shard_child() -> bool:
    """True inside a shard or isolated child process."""
    return os.environ.get(SHARD_CHILD_ENV) == "1"


def run_isolated(fn: Callable[..., Any], *args: Any) -> Any:
    """Run ``fn(*args)`` to completion in a dedicated child process.

    The degenerate single-shard execution path: a monolithic world
    (one shared MME/control plane, so it cannot be partitioned along
    WAN conduits) still honours ``sharding="site"`` by running whole
    in one shard process -- trivially byte-identical to in-process
    execution, since it runs the very same code.  ``fn`` and ``args``
    must be picklable; the return value crosses the pipe back.
    """
    ctx = _mp_context()
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_isolated_entry, args=(child, fn, args),
                       name=f"isolated-{getattr(fn, '__name__', 'fn')}")
    proc.start()
    child.close()
    try:
        try:
            message = parent.recv()
        except EOFError:
            raise RuntimeError(
                f"isolated process died without replying "
                f"(exitcode {proc.exitcode})") from None
    finally:
        parent.close()
        proc.join(timeout=10.0)
        if proc.is_alive():  # pragma: no cover - hung child
            proc.terminate()
            proc.join(timeout=10.0)
    if message[0] == "error":
        raise RuntimeError(f"isolated run failed:\n{message[1]}")
    return message[1]
