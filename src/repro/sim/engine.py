"""Deterministic discrete-event engine.

The simulator keeps a binary heap of :class:`Event` records ordered by
``(time, priority, sequence)``.  Ties are broken by insertion order, which
makes runs bit-for-bit reproducible.  Two programming styles are
supported:

* callback style -- ``sim.schedule(delay, fn, *args)``;
* process style -- ``sim.spawn(generator)`` where the generator yields
  a float delay in seconds, another :class:`Process` to join, or a
  :class:`Future` to await.

:meth:`Simulator.run_until_complete` bridges the two worlds: it drives
the shared event heap until one process finishes, which lets ordinary
synchronous code (including code already running inside an event
callback) block on a signalling procedure that is itself modelled as
simulated traffic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.hooks import HookBus


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (negative delays, etc.)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be
    cancelled.  Cancelled events stay in the heap but are skipped when
    popped, which keeps cancellation O(1).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled",
                 "_sim", "_popped")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._popped = False

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        if self.cancelled:
            return
        self.cancelled = True
        # keep the owning simulator's live-event counter exact: an
        # event still in the heap leaves the pending count when
        # cancelled; one that already ran was counted off at pop time
        if self._sim is not None and not self._popped:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Future:
    """A one-shot waitable result.

    Producers (a signalling channel delivering a message, for example)
    call :meth:`resolve` or :meth:`reject` exactly once; consumers
    either ``yield`` the future from a process or attach a callback.
    """

    __slots__ = ("_sim", "done", "value", "error", "_waiters", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self.done = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: list["Process"] = []
        self._callbacks: list[Callable[["Future"], Any]] = []

    def _settle(self) -> None:
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        for waiter in waiters:
            if self.error is not None:
                self._sim.schedule(0.0, waiter._step, None, self.error)
            else:
                self._sim.schedule(0.0, waiter._step, self.value)
        for fn in callbacks:
            fn(self)

    def resolve(self, value: Any = None) -> None:
        """Complete the future; waiting processes resume at ``now``."""
        if self.done:
            raise SimulationError("future already settled")
        self.done = True
        self.value = value
        self._settle()

    def reject(self, error: BaseException) -> None:
        """Fail the future; the error is thrown into waiting processes."""
        if self.done:
            raise SimulationError("future already settled")
        self.done = True
        self.error = error
        self._settle()

    def add_done_callback(self, fn: Callable[["Future"], Any]) -> None:
        """Run ``fn(future)`` when settled (immediately if already done)."""
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("rejected" if self.error is not None
                 else "resolved" if self.done else "pending")
        return f"<Future {state}>"


class Process:
    """A generator-driven coroutine running inside the simulator.

    The generator may yield:

    * ``float`` -- sleep for that many simulated seconds;
    * :class:`Process` -- suspend until that process finishes;
    * :class:`Future` -- suspend until the future settles;
    * ``None`` -- yield control and resume immediately (time does not
      advance).

    An exception escaping the generator marks the process ``finished``
    with ``error`` set.  If other processes are joined on it, the
    exception is thrown into each of them; otherwise it propagates out
    of the event loop (fail fast for fire-and-forget processes).
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: list[Process] = []

    def _step(self, send_value: Any = None,
              throw: Optional[BaseException] = None) -> None:
        if self.finished:
            return
        try:
            if throw is not None:
                yielded = self._gen.throw(throw)
            else:
                yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.value = stop.value
            for waiter in self._waiters:
                self._sim.schedule(0.0, waiter._step, self.value)
            self._waiters.clear()
            return
        except Exception as exc:
            self.finished = True
            self.error = exc
            waiters, self._waiters = self._waiters, []
            if not waiters:
                raise
            for waiter in waiters:
                self._sim.schedule(0.0, waiter._step, None, exc)
            return
        if yielded is None:
            self._sim.schedule(0.0, self._step)
        elif isinstance(yielded, Process):
            if yielded.finished:
                if yielded.error is not None:
                    self._sim.schedule(0.0, self._step, None, yielded.error)
                else:
                    self._sim.schedule(0.0, self._step, yielded.value)
            else:
                yielded._waiters.append(self)
        elif isinstance(yielded, Future):
            if yielded.done:
                if yielded.error is not None:
                    self._sim.schedule(0.0, self._step, None, yielded.error)
                else:
                    self._sim.schedule(0.0, self._step, yielded.value)
            else:
                yielded._waiters.append(self)
        else:
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {delay}")
            self._sim.schedule(delay, self._step)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """Single-threaded discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulated time in seconds.
    hooks:
        The simulation's :class:`~repro.sim.hooks.HookBus`.  Nodes and
        probes publish/subscribe typed events here instead of rebinding
        each other's methods.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.hooks = HookBus()
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._events_run = 0
        self._live = 0          # not-yet-cancelled, not-yet-run events

    # -- scheduling -----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event(self.now + delay, priority, next(self._seq), fn, args,
                      sim=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self.now})")
        return self.schedule(time - self.now, fn, *args, priority=priority)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; its first step runs at ``now``."""
        proc = Process(self, gen, name)
        self.schedule(0.0, proc._step)
        return proc

    def future(self) -> Future:
        """Create a fresh :class:`Future` bound to this simulator."""
        return Future(self)

    # -- execution ------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` passes, or
        ``max_events`` callbacks have executed."""
        count = 0
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            event._popped = True
            if event.cancelled:
                continue
            self._live -= 1
            self.now = event.time
            event.fn(*event.args)
            self._events_run += 1
            count += 1
            if max_events is not None and count >= max_events:
                break
        if until is not None and self.now < until:
            self.now = until

    def run_until_complete(self, proc: Process) -> Any:
        """Drive the event heap until ``proc`` finishes; return its value.

        This is the synchronous facade over process-style procedures:
        it pops events off the *shared* heap, so it is reentrant --
        an event callback may call it, and the whole world (other
        procedures, data-plane traffic, timers) keeps advancing while
        the caller blocks.  Raises the process's own exception if it
        fails, and :class:`SimulationError` if the heap drains before
        the process can finish (a deadlocked wait).
        """
        while not proc.finished:
            if not self.step():
                raise SimulationError(
                    f"deadlock: no pending events but process "
                    f"{proc.name!r} has not finished")
        if proc.error is not None:
            raise proc.error
        return proc.value

    def step(self) -> bool:
        """Run exactly one pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._popped = True
            if event.cancelled:
                continue
            self._live -= 1
            self.now = event.time
            event.fn(*event.args)
            self._events_run += 1
            return True
        return False

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): maintained as a live-event counter on push/pop/cancel
        (monitoring loops call this per tick; scanning the heap made it
        O(heap) per call)."""
        return self._live

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far."""
        return self._events_run

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events."""
        for event in events:
            event.cancel()
