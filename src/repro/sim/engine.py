"""Deterministic discrete-event engine.

The simulator executes :class:`Event` records in ``(time, priority,
sequence)`` order -- ties break by insertion order, which makes runs
bit-for-bit reproducible.  *How* that order is maintained is delegated
to a pluggable scheduler (:mod:`repro.sim.scheduler`): the default
:class:`~repro.sim.scheduler.FastScheduler` routes zero-delay events
through a FIFO now-lane and timers through a hierarchical timer wheel,
while :class:`~repro.sim.scheduler.ReferenceScheduler` keeps the
original single binary heap.  Both produce the exact same execution
order; the differential tests replay workloads on each and assert it.

Two programming styles are supported:

* callback style -- ``sim.schedule(delay, fn, *args)``;
* process style -- ``sim.spawn(generator)`` where the generator yields
  a float delay in seconds, another :class:`Process` to join, or a
  :class:`Future` to await.

:meth:`Simulator.run_until_complete` bridges the two worlds: it drives
the shared event queue until one process finishes, which lets ordinary
synchronous code (including code already running inside an event
callback) block on a signalling procedure that is itself modelled as
simulated traffic.

Internal continuations (process steps, future settlement) recycle their
:class:`Event` records through a free pool: those handles never escape
the engine, so reuse is safe, and a signalling storm allocates almost
no event objects in steady state.  Periodic sources get the same
benefit explicitly via :meth:`Event.reschedule`.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, Optional, Union

from repro.sim.hooks import HookBus
from repro.sim.scheduler import SchedulerBase, build_scheduler


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (negative delays, etc.)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be
    cancelled.  Cancelled events stay in their scheduler lane but are
    skipped (and discarded) when reached, which keeps cancellation O(1).
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled",
                 "_sim", "_popped", "_recyclable")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., Any], args: tuple,
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._popped = False
        self._recyclable = False

    def cancel(self) -> None:
        """Prevent this event's callback from running."""
        if self.cancelled:
            return
        self.cancelled = True
        # keep the owning simulator's live-event counter exact: an
        # event still queued leaves the pending count when cancelled;
        # one that already ran was counted off at pop time
        if self._sim is not None and not self._popped:
            self._sim._live -= 1

    def reschedule(self, delay: float) -> "Event":
        """Re-arm this event ``delay`` seconds from now, reusing the slot.

        Only valid once the event has left the scheduler (it ran, or it
        was cancelled and then skipped) -- re-arming an event that is
        still queued would enqueue it twice.  Periodic sources use this
        to tick without allocating a fresh :class:`Event` per period.
        Returns ``self`` so call sites can keep ``timer =
        timer.reschedule(dt)`` shaped like the allocating form.
        """
        sim = self._sim
        if sim is None:
            raise SimulationError("event has no owning simulator")
        if not self._popped:
            raise SimulationError(
                "cannot reschedule an event that is still queued")
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.time = sim.now + delay
        self.seq = next(sim._seq)
        self.cancelled = False
        self._popped = False
        sim._scheduler.push(self, zero_delay=delay == 0.0)
        sim._live += 1
        sim.arm_epoch += 1
        return self

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time, other.priority, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Future:
    """A one-shot waitable result.

    Producers (a signalling channel delivering a message, for example)
    call :meth:`resolve` or :meth:`reject` exactly once; consumers
    either ``yield`` the future from a process or attach a callback.
    """

    __slots__ = ("_sim", "done", "value", "error", "_waiters", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self.done = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: list["Process"] = []
        self._callbacks: list[Callable[["Future"], Any]] = []

    def _settle(self) -> None:
        waiters, self._waiters = self._waiters, []
        callbacks, self._callbacks = self._callbacks, []
        for waiter in waiters:
            if self.error is not None:
                self._sim._schedule_step(waiter._step, None, self.error)
            else:
                self._sim._schedule_step(waiter._step, self.value)
        for fn in callbacks:
            fn(self)

    def resolve(self, value: Any = None) -> None:
        """Complete the future; waiting processes resume at ``now``."""
        if self.done:
            raise SimulationError("future already settled")
        self.done = True
        self.value = value
        self._settle()

    def reject(self, error: BaseException) -> None:
        """Fail the future; the error is thrown into waiting processes."""
        if self.done:
            raise SimulationError("future already settled")
        self.done = True
        self.error = error
        self._settle()

    def add_done_callback(self, fn: Callable[["Future"], Any]) -> None:
        """Run ``fn(future)`` when settled (immediately if already done)."""
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("rejected" if self.error is not None
                 else "resolved" if self.done else "pending")
        return f"<Future {state}>"


class Process:
    """A generator-driven coroutine running inside the simulator.

    The generator may yield:

    * ``float`` -- sleep for that many simulated seconds;
    * :class:`Process` -- suspend until that process finishes;
    * :class:`Future` -- suspend until the future settles;
    * ``None`` -- yield control and resume immediately (time does not
      advance).

    An exception escaping the generator marks the process ``finished``
    with ``error`` set.  If other processes are joined on it, the
    exception is thrown into each of them; otherwise it propagates out
    of the event loop (fail fast for fire-and-forget processes).
    """

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.finished = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: list[Process] = []

    def _step(self, send_value: Any = None,
              throw: Optional[BaseException] = None) -> None:
        if self.finished:
            return
        try:
            if throw is not None:
                yielded = self._gen.throw(throw)
            else:
                yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.value = stop.value
            for waiter in self._waiters:
                self._sim._schedule_step(waiter._step, self.value)
            self._waiters.clear()
            return
        except Exception as exc:
            self.finished = True
            self.error = exc
            waiters, self._waiters = self._waiters, []
            if not waiters:
                raise
            for waiter in waiters:
                self._sim._schedule_step(waiter._step, None, exc)
            return
        if yielded is None:
            self._sim._schedule_step(self._step)
        elif isinstance(yielded, Process):
            if yielded.finished:
                if yielded.error is not None:
                    self._sim._schedule_step(self._step, None, yielded.error)
                else:
                    self._sim._schedule_step(self._step, yielded.value)
            else:
                yielded._waiters.append(self)
        elif isinstance(yielded, Future):
            if yielded.done:
                if yielded.error is not None:
                    self._sim._schedule_step(self._step, None, yielded.error)
                else:
                    self._sim._schedule_step(self._step, yielded.value)
            else:
                yielded._waiters.append(self)
        else:
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {delay}")
            self._sim._schedule_internal(delay, self._step)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """Single-threaded discrete-event simulator.

    Parameters
    ----------
    scheduler:
        A scheduler name (``"fast"`` | ``"reference"``), a ready
        instance, or ``None`` to defer to the ``REPRO_SIM_SCHEDULER``
        environment variable (default ``"fast"``).  See
        :mod:`repro.sim.scheduler` and
        :class:`repro.core.config.SimConfig`.
    wheel_granularity / wheel_slots:
        Timer-wheel geometry for the fast scheduler (ignored by the
        reference one).
    pool_size:
        Upper bound on the free pool of recycled internal events.

    Attributes
    ----------
    now:
        Current simulated time in seconds.
    hooks:
        The simulation's :class:`~repro.sim.hooks.HookBus`.  Nodes and
        probes publish/subscribe typed events here instead of rebinding
        each other's methods.
    """

    def __init__(self,
                 scheduler: Union[str, SchedulerBase, None] = None,
                 wheel_granularity: float = 1e-4,
                 wheel_slots: int = 1024,
                 pool_size: int = 1024) -> None:
        self.now: float = 0.0
        self.hooks = HookBus()
        #: monotone counter bumped every time an event is armed (fresh,
        #: recycled or re-armed).  Real-time pacers snapshot it before a
        #: wall-clock sleep: a changed epoch means a callback (possibly
        #: a reentrant ``run_until_complete`` one) armed new work, so the
        #: cached ``next_event_time()`` bound may now be stale and must
        #: be re-sampled instead of sleeping through the old target.
        self.arm_epoch: int = 0
        self._scheduler = build_scheduler(scheduler,
                                          granularity=wheel_granularity,
                                          slots=wheel_slots)
        self._seq = itertools.count()
        self._events_run = 0
        self._live = 0          # not-yet-cancelled, not-yet-run events
        self._pool: list[Event] = []
        self._pool_size = pool_size
        self._pool_hits = 0
        self._pool_misses = 0

    # -- scheduling -----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        event = Event(self.now + delay, priority, next(self._seq), fn, args,
                      sim=self)
        self._scheduler.push(event, zero_delay=delay == 0.0)
        self._live += 1
        self.arm_epoch += 1
        return event

    def _schedule_internal(self, delay: float, fn: Callable[..., Any],
                           *args: Any) -> None:
        """Engine-internal scheduling: the handle never escapes, so the
        event is recycled through the free pool after it runs."""
        pool = self._pool
        if pool:
            event = pool.pop()
            self._pool_hits += 1
            event.time = self.now + delay
            event.seq = next(self._seq)
            event.fn = fn
            event.args = args
            event.cancelled = False
            event._popped = False
        else:
            self._pool_misses += 1
            event = Event(self.now + delay, 0, next(self._seq), fn, args,
                          sim=self)
            event._recyclable = True
        self._scheduler.push(event, zero_delay=delay == 0.0)
        self._live += 1
        self.arm_epoch += 1

    def _schedule_step(self, fn: Callable[..., Any], *args: Any) -> None:
        """Zero-delay internal continuation (the dominant event kind)."""
        self._schedule_internal(0.0, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self.now})")
        return self.schedule(time - self.now, fn, *args, priority=priority)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process; its first step runs at ``now``."""
        proc = Process(self, gen, name)
        self._schedule_step(proc._step)
        return proc

    def future(self) -> Future:
        """Create a fresh :class:`Future` bound to this simulator."""
        return Future(self)

    # -- execution ------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` callbacks have executed."""
        pop = self._scheduler.pop_due
        pool = self._pool
        pool_cap = self._pool_size
        # the executed-event count is accumulated locally and folded
        # into the counters on exit (nothing reads them mid-run: the
        # only readers are workloads/tests between run() calls)
        ran = 0
        try:
            if max_events is None:
                # the common case gets a tight loop: no event budget to
                # track, one bound-method call per event
                while True:
                    event = pop(until)
                    if event is None:
                        break
                    ran += 1
                    self.now = event.time
                    event.fn(*event.args)
                    if (event._recyclable and event._popped
                            and len(pool) < pool_cap):
                        event.fn = None
                        event.args = ()
                        pool.append(event)
            else:
                while ran < max_events:
                    event = pop(until)
                    if event is None:
                        break
                    ran += 1
                    self.now = event.time
                    event.fn(*event.args)
                    if (event._recyclable and event._popped
                            and len(pool) < pool_cap):
                        event.fn = None
                        event.args = ()
                        pool.append(event)
        finally:
            self._live -= ran
            self._events_run += ran
        if until is not None and self.now < until:
            self.now = until

    def run_until_complete(self, proc: Process) -> Any:
        """Drive the event queue until ``proc`` finishes; return its value.

        This is the synchronous facade over process-style procedures:
        it pops events off the *shared* scheduler, so it is reentrant --
        an event callback may call it, and the whole world (other
        procedures, data-plane traffic, timers) keeps advancing while
        the caller blocks.  Raises the process's own exception if it
        fails, and :class:`SimulationError` if the queue drains before
        the process can finish (a deadlocked wait).
        """
        while not proc.finished:
            if not self.step():
                raise SimulationError(
                    f"deadlock: no pending events but process "
                    f"{proc.name!r} has not finished")
        if proc.error is not None:
            raise proc.error
        return proc.value

    def step(self) -> bool:
        """Run exactly one pending event.  Returns False if none remain."""
        event = self._scheduler.pop_due(None)
        if event is None:
            return False
        self._live -= 1
        self.now = event.time
        event.fn(*event.args)
        self._events_run += 1
        if (event._recyclable and event._popped
                and len(self._pool) < self._pool_size):
            event.fn = None
            event.args = ()
            self._pool.append(event)
        return True

    def next_event_time(self) -> Optional[float]:
        """A lower bound on the next pending event's time, or ``None``.

        ``None`` means the queue is drained (no live events).  Otherwise
        the returned time is ``>= now`` and ``<=`` the true next event
        time: schedulers report the earliest lane head / wheel-bucket
        bound they track without opening buckets or skipping cancelled
        events, so the bound may be early but never late.  Real-time
        pacers (:mod:`repro.ops.pacer`) use it to sleep through idle
        stretches instead of polling empty quanta; running the
        simulator ``until`` the bound and asking again converges on the
        true next event.

        The bound describes the queue *as it stands now*: any callback
        that arms events afterwards -- including control code calling
        :meth:`run_until_complete` reentrantly -- invalidates it.  Such
        arming bumps :attr:`arm_epoch`, which sleepers compare against
        a snapshot to know when to re-sample instead of trusting a
        stale bound.
        """
        if self._live <= 0:
            return None
        bound = self._scheduler.next_time_lower_bound()
        return self.now if bound < self.now else bound

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): maintained as a live-event counter on push/pop/cancel
        (monitoring loops call this per tick; scanning the queue made
        it O(queue) per call)."""
        return self._live

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far."""
        return self._events_run

    @property
    def scheduler_name(self) -> str:
        """Which scheduler implementation this simulator runs on."""
        return self._scheduler.name

    def profile(self) -> dict:
        """Execution counters: events by lane, pool hit rate, peaks.

        The shape is scheduler-dependent (the fast scheduler reports
        wheel statistics, the reference one only its heap) but always
        includes ``scheduler``, ``events_run``, ``pending`` and
        ``pool``.  Counters are diagnostics only -- nothing in the
        simulation may read them back into behaviour.
        """
        requests = self._pool_hits + self._pool_misses
        data = {
            "scheduler": self._scheduler.name,
            "events_run": self._events_run,
            "pending": self._live,
            "pool": {
                "hits": self._pool_hits,
                "misses": self._pool_misses,
                "hit_rate": self._pool_hits / requests if requests else 0.0,
                "free": len(self._pool),
                "capacity": self._pool_size,
            },
        }
        data.update(self._scheduler.profile())
        return data

    def drain(self, events: Iterable[Event]) -> None:
        """Cancel a collection of events."""
        for event in events:
            event.cancel()
