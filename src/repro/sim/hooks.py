"""Typed hook/signal bus.

Cross-layer instrumentation used to be wired by rebinding methods at
runtime (``ue.on_downlink = probe`` and friends), which made probes
impossible to stack or remove and left dangling state behind.  The
:class:`HookBus` replaces that with typed publish/subscribe: layers
*emit* small frozen event dataclasses and any number of subscribers
*observe* them, each holding a :class:`Subscription` it can ``close()``.

Design rules:

* dispatch is by **exact event type** -- one dict lookup per emit, so
  emitting on a bus nobody listens to is near-free (guard hot paths
  with :meth:`HookBus.has` to skip even the event construction);
* handlers run synchronously, in subscription order, on the emitter's
  stack -- the bus adds no scheduling of its own;
* handlers may subscribe/unsubscribe (including themselves) during
  dispatch: a subscription closed mid-dispatch never sees the event
  again, a subscription opened mid-dispatch first sees the *next*
  event, and other subscribers are neither skipped nor double-served.
  Removal is deferred while a dispatch is on the stack (the handler
  list is compacted when the outermost emit returns), so the emit loop
  walks the live list by index instead of allocating a snapshot per
  event.

The sim-layer events live here too; higher layers define their own
(:mod:`repro.epc.events`, :mod:`repro.sdn.events`) and emit them over
the same bus -- the bus is type-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.link import Link
    from repro.sim.node import Node
    from repro.sim.packet import Packet


class Subscription:
    """Handle returned by :meth:`HookBus.on`; ``close()`` detaches it."""

    __slots__ = ("bus", "event_type", "fn", "active")

    def __init__(self, bus: "HookBus", event_type: type,
                 fn: Callable[[Any], None]) -> None:
        self.bus = bus
        self.event_type = event_type
        self.fn = fn
        self.active = True

    def close(self) -> None:
        """Detach this handler.  Idempotent."""
        self.bus.off(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "closed"
        return (f"<Subscription {self.event_type.__name__} -> "
                f"{getattr(self.fn, '__name__', self.fn)} {state}>")


class HookBus:
    """Synchronous typed signal bus."""

    def __init__(self) -> None:
        self._handlers: dict[type, list[Subscription]] = {}
        self.emitted = 0
        #: bumped on every subscribe/unsubscribe; hot paths cache their
        #: ``has()`` verdict against it instead of probing per emit
        self.generation = 0
        self._dispatching = 0           # emit() nesting depth
        self._dirty: set[type] = set()  # types with deferred removals

    # -- subscription management -----------------------------------------

    def on(self, event_type: Type[Any],
           fn: Callable[[Any], None]) -> Subscription:
        """Register ``fn`` to run for every emitted ``event_type``."""
        if not isinstance(event_type, type):
            raise TypeError(f"event type must be a class, got {event_type!r}")
        sub = Subscription(self, event_type, fn)
        self._handlers.setdefault(event_type, []).append(sub)
        self.generation += 1
        return sub

    def off(self, subscription: Subscription) -> None:
        """Remove a subscription.  Idempotent.

        Safe to call from inside a handler: while any dispatch is on
        the stack the subscription is only marked inactive (so in-flight
        emit loops skip it without disturbing their iteration) and the
        handler list is compacted when the outermost emit returns.
        """
        if not subscription.active:
            return
        subscription.active = False
        if self._dispatching:
            self._dirty.add(subscription.event_type)
        else:
            self._remove(subscription)
        self.generation += 1

    def _remove(self, subscription: Subscription) -> None:
        subs = self._handlers.get(subscription.event_type)
        if subs is not None:
            try:
                subs.remove(subscription)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not subs:
                del self._handlers[subscription.event_type]

    def _compact(self) -> None:
        for event_type in self._dirty:
            subs = self._handlers.get(event_type)
            if subs is None:
                continue
            live = [s for s in subs if s.active]
            if live:
                self._handlers[event_type] = live
            else:
                del self._handlers[event_type]
        self._dirty.clear()

    def has(self, event_type: type) -> bool:
        """True if anyone listens for ``event_type`` (hot-path guard).

        May report a false positive for a type whose last subscriber
        closed during an in-flight dispatch (pending compaction); the
        guard's contract -- "emitting is a no-op when False" -- holds
        either way.
        """
        return event_type in self._handlers

    def subscriber_count(self, event_type: Optional[type] = None) -> int:
        if event_type is not None:
            return sum(1 for s in self._handlers.get(event_type, ())
                       if s.active)
        return sum(1 for subs in self._handlers.values()
                   for s in subs if s.active)

    def close(self) -> None:
        """Detach every subscriber."""
        for subs in list(self._handlers.values()):
            for sub in list(subs):
                self.off(sub)

    # -- emission ---------------------------------------------------------

    def emit(self, event: Any) -> int:
        """Dispatch ``event`` to its type's subscribers, in order.

        Returns the number of handlers invoked.  The loop walks the
        live handler list by index up to its length at entry: handlers
        added during dispatch are not served this event (they start
        with the next one), handlers closed during dispatch are skipped
        via their ``active`` flag, and removal is deferred until the
        outermost dispatch returns so no subscriber is skipped or
        double-served by list compaction happening mid-iteration.
        """
        subs = self._handlers.get(type(event))
        if not subs:
            return 0
        self.emitted += 1
        count = 0
        self._dispatching += 1
        try:
            for i in range(len(subs)):
                sub = subs[i]
                if sub.active:
                    sub.fn(event)
                    count += 1
        finally:
            self._dispatching -= 1
            if not self._dispatching and self._dirty:
                self._compact()
        return count


# -- sim-layer events ------------------------------------------------------

@dataclass(frozen=True)
class PacketDelivered:
    """A packet reached a terminal sink (:class:`~repro.sim.node.PacketSink`)."""

    node: "Node"
    packet: "Packet"
    link: Optional["Link"]


@dataclass(frozen=True)
class PacketDropped:
    """A packet was dropped somewhere in the simulated world.

    ``reason`` distinguishes the cause on the bus:

    * ``"link-down"`` -- the carrying link was administratively down;
    * ``"queue-overflow"`` -- drop-tail at a full link queue;
    * ``"injected-loss"`` -- a fault-layer channel perturbation;
    * ``"entity-down"`` -- the addressed control-plane party crashed.

    For fault-layer signalling drops ``link``/``sender`` refer to the
    signalling channel's link and sending end (``sender`` may be None
    when the drop happened before any channel was involved).
    """

    link: Optional["Link"]
    packet: "Packet"
    sender: Optional["Node"]
    reason: str
