"""Packet and protocol-header model.

A :class:`Packet` carries an application payload size plus a stack of
:class:`Header` objects.  Encapsulation (GTP-U over UDP/IP, for example)
pushes headers; the wire size used for serialization delay is the payload
plus every header currently on the stack, which is how the simulator
charges tunnelling overhead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_packet_ids = itertools.count(1)


@dataclass
class Header:
    """A protocol header pushed onto a packet.

    Parameters
    ----------
    protocol:
        Short protocol name, e.g. ``"GTP-U"`` or ``"IPv4"``.
    size:
        Header length in bytes, charged to the wire size.
    fields:
        Protocol-specific key/value fields (e.g. ``{"teid": 0x1001}``).
    """

    protocol: str
    size: int
    fields: dict = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


@dataclass
class Packet:
    """A simulated packet.

    ``src``/``dst`` are endpoint IP addresses (strings); ``src_port`` and
    ``dst_port`` complete the classic five-tuple together with ``protocol``.
    """

    src: str
    dst: str
    size: int                      # payload bytes (headers add on top)
    protocol: str = "UDP"
    src_port: int = 0
    dst_port: int = 0
    flow_id: str = ""
    qci: Optional[int] = None      # QoS class set once mapped to a bearer
    created_at: float = 0.0
    meta: dict = field(default_factory=dict)
    headers: list[Header] = field(default_factory=list)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: payload plus all pushed headers."""
        return self.size + sum(h.size for h in self.headers)

    @property
    def five_tuple(self) -> tuple[str, str, str, int, int]:
        return (self.src, self.dst, self.protocol,
                self.src_port, self.dst_port)

    # -- encapsulation ----------------------------------------------------

    def push_header(self, header: Header) -> None:
        """Encapsulate: the new header becomes the outermost."""
        self.headers.append(header)

    def pop_header(self, protocol: Optional[str] = None) -> Header:
        """Decapsulate the outermost header.

        If ``protocol`` is given, it must match the outermost header's
        protocol; a mismatch raises ``ValueError`` (mis-wired tunnel).
        """
        if not self.headers:
            raise ValueError("no headers to pop")
        header = self.headers[-1]
        if protocol is not None and header.protocol != protocol:
            raise ValueError(
                f"expected outer header {protocol!r}, found {header.protocol!r}")
        return self.headers.pop()

    def outer_header(self) -> Optional[Header]:
        """The outermost header, or None for a bare packet."""
        return self.headers[-1] if self.headers else None

    def find_header(self, protocol: str) -> Optional[Header]:
        """Innermost-first search for a header by protocol name."""
        for header in self.headers:
            if header.protocol == protocol:
                return header
        return None

    def copy(self) -> "Packet":
        """Deep-ish copy with a fresh packet id (headers are duplicated)."""
        clone = Packet(
            src=self.src, dst=self.dst, size=self.size,
            protocol=self.protocol, src_port=self.src_port,
            dst_port=self.dst_port, flow_id=self.flow_id, qci=self.qci,
            created_at=self.created_at, meta=dict(self.meta),
            headers=[Header(h.protocol, h.size, dict(h.fields))
                     for h in self.headers],
        )
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        encap = "/".join(h.protocol for h in reversed(self.headers))
        encap = f" [{encap}]" if encap else ""
        return (f"<Packet #{self.packet_id} {self.src}:{self.src_port}->"
                f"{self.dst}:{self.dst_port} {self.protocol} "
                f"{self.size}B{encap}>")
