"""Packet and protocol-header model.

A :class:`Packet` carries an application payload size plus a stack of
:class:`Header` objects.  Encapsulation (GTP-U over UDP/IP, for example)
pushes headers; the wire size used for serialization delay is the payload
plus every header currently on the stack, which is how the simulator
charges tunnelling overhead.

Both classes are slotted and construct lazily: a packet-flood's packets
never touch metadata or encapsulation, so ``meta`` and ``headers`` only
materialise their dict/list on first access.  This is the hot
allocation path of every figure-scale experiment -- millions of packets
per run -- which is why the classes are hand-rolled rather than
dataclasses.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

_packet_ids = itertools.count(1)


class Header:
    """A protocol header pushed onto a packet.

    Parameters
    ----------
    protocol:
        Short protocol name, e.g. ``"GTP-U"`` or ``"IPv4"``.
    size:
        Header length in bytes, charged to the wire size.
    fields:
        Protocol-specific key/value fields (e.g. ``{"teid": 0x1001}``).
    """

    __slots__ = ("protocol", "size", "fields")

    def __init__(self, protocol: str, size: int,
                 fields: Optional[dict] = None) -> None:
        self.protocol = protocol
        self.size = size
        self.fields = {} if fields is None else fields

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Header):
            return NotImplemented
        return (self.protocol == other.protocol and self.size == other.size
                and self.fields == other.fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Header(protocol={self.protocol!r}, size={self.size!r})"


class Packet:
    """A simulated packet.

    ``src``/``dst`` are endpoint IP addresses (strings); ``src_port`` and
    ``dst_port`` complete the classic five-tuple together with ``protocol``.
    """

    __slots__ = ("src", "dst", "size", "protocol", "src_port", "dst_port",
                 "flow_id", "qci", "created_at", "packet_id",
                 "_meta", "_headers")

    def __init__(self, src: str, dst: str, size: int,
                 protocol: str = "UDP", src_port: int = 0, dst_port: int = 0,
                 flow_id: str = "", qci: Optional[int] = None,
                 created_at: float = 0.0,
                 meta: Optional[dict] = None,
                 headers: Optional[list] = None,
                 packet_id: Optional[int] = None) -> None:
        self.src = src
        self.dst = dst
        self.size = size                # payload bytes (headers add on top)
        self.protocol = protocol
        self.src_port = src_port
        self.dst_port = dst_port
        self.flow_id = flow_id
        self.qci = qci                  # QoS class set once mapped to a bearer
        self.created_at = created_at
        self._meta = meta
        self._headers = headers
        self.packet_id = (next(_packet_ids) if packet_id is None
                          else packet_id)

    # meta and headers materialise on first touch; most packets need
    # neither, and the empty containers dominated construction cost

    @property
    def meta(self) -> dict:
        meta = self._meta
        if meta is None:
            meta = self._meta = {}
        return meta

    @meta.setter
    def meta(self, value: dict) -> None:
        self._meta = value

    @property
    def headers(self) -> list:
        headers = self._headers
        if headers is None:
            headers = self._headers = []
        return headers

    @headers.setter
    def headers(self, value: list) -> None:
        self._headers = value

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: payload plus all pushed headers."""
        headers = self._headers
        if not headers:
            return self.size
        return self.size + sum(h.size for h in headers)

    @property
    def five_tuple(self) -> tuple[str, str, str, int, int]:
        return (self.src, self.dst, self.protocol,
                self.src_port, self.dst_port)

    # -- encapsulation ----------------------------------------------------

    def push_header(self, header: Header) -> None:
        """Encapsulate: the new header becomes the outermost."""
        self.headers.append(header)

    def pop_header(self, protocol: Optional[str] = None) -> Header:
        """Decapsulate the outermost header.

        If ``protocol`` is given, it must match the outermost header's
        protocol; a mismatch raises ``ValueError`` (mis-wired tunnel).
        """
        if not self._headers:
            raise ValueError("no headers to pop")
        header = self._headers[-1]
        if protocol is not None and header.protocol != protocol:
            raise ValueError(
                f"expected outer header {protocol!r}, found {header.protocol!r}")
        return self._headers.pop()

    def outer_header(self) -> Optional[Header]:
        """The outermost header, or None for a bare packet."""
        headers = self._headers
        return headers[-1] if headers else None

    def find_header(self, protocol: str) -> Optional[Header]:
        """Innermost-first search for a header by protocol name."""
        if self._headers:
            for header in self._headers:
                if header.protocol == protocol:
                    return header
        return None

    def copy(self) -> "Packet":
        """Deep-ish copy with a fresh packet id (headers are duplicated)."""
        clone = Packet(
            src=self.src, dst=self.dst, size=self.size,
            protocol=self.protocol, src_port=self.src_port,
            dst_port=self.dst_port, flow_id=self.flow_id, qci=self.qci,
            created_at=self.created_at,
            meta=dict(self._meta) if self._meta else None,
            headers=([Header(h.protocol, h.size, dict(h.fields))
                      for h in self._headers] if self._headers else None),
        )
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        encap = "/".join(h.protocol for h in reversed(self.headers))
        encap = f" [{encap}]" if encap else ""
        return (f"<Packet #{self.packet_id} {self.src}:{self.src_port}->"
                f"{self.dst}:{self.dst_port} {self.protocol} "
                f"{self.size}B{encap}>")
