"""Empirical WAN models for commercial LTE-to-cloud paths.

Figure 3(c)/(d) of the paper measures RTT and uplink bandwidth from a
midwest-US smartphone on a commercial LTE network to Amazon EC2 regions.
We model each region's RTT as a shifted log-normal (heavy upper tail, a
hard lower bound set by propagation) and uplink bandwidth as a function
of signal quality.  Parameters are calibrated to the paper's reported
statistics: California is the closest region at ~70 ms median RTT and
~12 Mbps peak uplink.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class WANProfile:
    """Latency/bandwidth model for one LTE-to-cloud path.

    RTT ~ ``base_rtt + LogNormal(mu, sigma)`` (seconds); the log-normal
    component models core-network and internet queueing jitter.
    """

    name: str
    base_rtt: float            # propagation + protocol floor (seconds)
    jitter_mu: float           # log-space mean of the jitter component
    jitter_sigma: float        # log-space std of the jitter component
    ul_bandwidth_excellent: float   # bits/sec at 4/4 signal bars
    ul_bandwidth_fair: float        # bits/sec at 2/4 signal bars

    def sample_rtt(self, rng: np.random.Generator,
                   n: int = 1) -> np.ndarray:
        """Draw ``n`` RTT samples in seconds."""
        jitter = rng.lognormal(self.jitter_mu, self.jitter_sigma, size=n)
        return self.base_rtt + jitter

    def median_rtt(self) -> float:
        """Analytic median RTT (seconds)."""
        return self.base_rtt + float(np.exp(self.jitter_mu))

    def ul_bandwidth(self, signal: str = "excellent") -> float:
        """Uplink bandwidth in bits/sec for a signal-quality label."""
        if signal == "excellent":
            return self.ul_bandwidth_excellent
        if signal == "fair":
            return self.ul_bandwidth_fair
        raise ValueError(f"unknown signal quality {signal!r}")


#: Calibrated to Figure 3(c)/(d): medians ~70/95/120 ms; uplink peaks
#: ~12/10/9 Mbps with roughly half that at fair signal.
LTE_WAN_PROFILES: dict[str, WANProfile] = {
    "ec2-california": WANProfile(
        name="ec2-california", base_rtt=0.055,
        jitter_mu=np.log(0.015), jitter_sigma=0.55,
        ul_bandwidth_excellent=12e6, ul_bandwidth_fair=6.5e6),
    "ec2-oregon": WANProfile(
        name="ec2-oregon", base_rtt=0.070,
        jitter_mu=np.log(0.025), jitter_sigma=0.50,
        ul_bandwidth_excellent=10.5e6, ul_bandwidth_fair=5.5e6),
    "ec2-virginia": WANProfile(
        name="ec2-virginia", base_rtt=0.090,
        jitter_mu=np.log(0.030), jitter_sigma=0.50,
        ul_bandwidth_excellent=9e6, ul_bandwidth_fair=4.5e6),
}


def rtt_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF helper: returns sorted samples and cumulative probs."""
    xs = np.sort(np.asarray(samples))
    ps = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ps
