"""Fluid-flow traffic aggregation: rate-based background load.

Per-packet simulation of heavy background traffic dominates the event
budget of the figure-scale experiments: a 90 Mbit/s Poisson load is
~8000 packets/s, each crossing four or five hops, for millions of
events per run.  This module replaces such flows with **fluid flows**
-- piecewise-constant rates integrated analytically -- in the style of
the classic fluid-simulation literature, while signalling and CI/AR
traffic stay per-packet on the very same links.

Model
-----

A :class:`FluidQueue` is one fluid server with a capacity ``C``
(units/second) and an optional finite buffer (units).  Two unit
conventions are used:

* a **link direction** serves *bits*: ``C`` is the direction's
  bandwidth and the buffer is the link's drop-tail queue in bits;
* a **gateway CPU** serves *CPU-seconds*: ``C = 1.0`` and a flow
  offering ``p`` packets/s at a per-packet cost ``c`` contributes
  ``p*c`` CPU-seconds/second of load (the buffer is unbounded, like
  the switch's serial-CPU busy-until clock).

Between re-solves every rate is constant, so the backlog ``b(t)`` is
piecewise linear (``db/dt = A - C`` clipped to ``[0, buffer]``, where
``A`` is the aggregate in-rate) and needs **no events** to evolve: it
is integrated lazily whenever somebody looks (a per-packet arrival, a
monitor, a fault).  The flow/rate system is re-solved only when the
flow set changes, a link goes up or down, or a rate changes; the only
recurring events a fluid system schedules are low-frequency flushes
that materialise accumulated byte drops as aggregate
:class:`~repro.sim.hooks.PacketDropped` events while a buffer is
overflowing.

Per-packet composition
----------------------

Per-packet traffic sharing a fluid queue sees the correct residual
service.  A packet of priority ``p`` arriving at time ``t`` is delayed
by the backlog ahead of it plus the stationary queue the fluid mean
hides:

* strict-priority link, blocking fluid in-rate ``A_b`` (flows with a
  priority at least as good): ``wait = b_b / (C - A_b)`` -- the
  backlog drains at ``C`` but better-priority fluid keeps overtaking,
  which is exactly the residual-bandwidth view (capped at the drain
  time of a full buffer when ``A_b >= C``);
* FIFO server (a gateway CPU, a non-QoS link): ``wait = b_b / C`` --
  later fluid arrivals queue *behind* the packet;
* plus an M/D/1-style stationary term
  ``rho/(2(1-rho)) * S`` (clamped) weighted by the blocking flows'
  arrival variability: Poisson at a flow's first hop, smoothed to
  deterministic once a flow has crossed a near-saturated hop (a
  saturated server's departure process carries no burstiness).

The deliberate limitation: a fluid flow's *mean* backlog below
saturation is zero, so the stationary term is a correction, not a
distribution -- percentiles of per-packet delay under near-critical
load (``rho -> 1``) are reproduced in magnitude, not in tail shape.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.sim.hooks import PacketDropped
from repro.sim.link import _BEST_EFFORT_PRIORITY, Link
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event, Simulator
    from repro.sim.link import _Direction
    from repro.sim.node import Node

_flow_ids = itertools.count(1)

#: Default fluid packet size (bytes), matching the traffic generators.
DEFAULT_FLUID_PACKET_SIZE = 1400

#: Clamp for the ``rho/(2(1-rho))`` stationary-queue factor: at
#: critical load the factor diverges while the real queue grows like a
#: random walk; the clamp keeps the correction a bounded number of
#: service times.
_STATIONARY_MAX = 25.0

#: Utilisation beyond which a server's departure process is treated as
#: smoothed (deterministic spacing): downstream hops then apply no
#: stationary correction for that flow.
_SMOOTHING_RHO = 0.95

#: Fixed-point passes for the rate solve (paths are feed-forward, so
#: this bounds the longest hop chain the solve converges over).
_SOLVE_PASSES = 8

#: Relative convergence tolerance on per-queue shares.
_SOLVE_EPS = 1e-9

#: How often an overflowing queue materialises its accumulated byte
#: drops as aggregate PacketDropped events (simulated seconds).
DROP_FLUSH_INTERVAL = 1.0


class _FlowEntry:
    """One flow's membership in one :class:`FluidQueue`.

    ``scale`` converts the flow's byte rate to queue units/second
    (``8`` for a link direction, ``cost/packet_size`` for a CPU);
    ``upp`` is the queue units one flow packet occupies, which the
    stationary correction uses as the per-packet service quantum.
    """

    __slots__ = ("flow", "scale", "priority", "upp", "rate", "var",
                 "pending_drops")

    def __init__(self, flow: "FluidFlow", scale: float,
                 priority: int) -> None:
        self.flow = flow
        self.scale = scale
        self.priority = priority
        self.upp = scale * flow.packet_size
        self.rate = 0.0             # units/s entering (last solve)
        self.var = 1.0              # arrival variability in [0, 1]
        self.pending_drops: dict[str, float] = {}   # reason -> bytes


class FluidQueue:
    """A fluid server: aggregate rates in, capped rate out, backlog.

    The queue never schedules per-byte work: its backlog is integrated
    lazily on access (:meth:`advance`) and the only events it arms are
    low-rate drop flushes while overflowing.  ``drop_emitter`` (set by
    the owning :class:`FluidLink`) turns accumulated dropped bytes
    into aggregate drop events; without one, drops are still counted
    on the flows.
    """

    def __init__(self, sim: "Simulator", capacity: float,
                 buffer: Optional[float] = None, name: str = "") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self.buffer = buffer        # units; None -> unbounded
        self.up = True
        self.backlog = 0.0          # units
        self.in_rate = 0.0          # aggregate units/s (last solve)
        self.share = 1.0            # output scale passed downstream
        self.drop_emitter: Optional[Callable[["FluidFlow", str, float,
                                              int], None]] = None
        self._entries: list[_FlowEntry] = []
        self._rates = np.zeros(0)
        self._vars = np.zeros(0)
        self._priorities = np.zeros(0, dtype=int)
        self._upp = np.zeros(0)
        self._t = sim.now
        self._flush_event: Optional["Event"] = None

    # -- membership -------------------------------------------------------

    def attach(self, flow: "FluidFlow", scale: float,
               priority: int = _BEST_EFFORT_PRIORITY) -> _FlowEntry:
        entry = _FlowEntry(flow, scale, priority)
        self._entries.append(entry)
        self._priorities = np.array([e.priority for e in self._entries])
        self._upp = np.array([e.upp for e in self._entries])
        self._rates = np.zeros(len(self._entries))
        self._vars = np.ones(len(self._entries))
        return entry

    # -- piecewise-linear state -------------------------------------------

    def advance(self, now: float) -> None:
        """Integrate backlog (and drops) from the last solve to ``now``.

        Rates are constant between solves, so this is exact: the
        backlog moves linearly and clips at zero (drained) or at the
        buffer (dropping the overflow, attributed to flows in
        proportion to their in-rates).
        """
        dt = now - self._t
        if dt <= 0.0:
            return
        self._t = now
        if not self._entries:
            self.backlog = max(0.0, self.backlog - self.capacity * dt)
            return
        if not self.up:
            # arrivals die at the down link; the backlog keeps draining
            # (packets already queued still leave the wire)
            self._accrue_drops(self._rates * dt, "link-down")
            self.backlog = max(0.0, self.backlog - self.capacity * dt)
            return
        b = self.backlog + (self.in_rate - self.capacity) * dt
        if b < 0.0:
            b = 0.0
        if self.buffer is not None and b > self.buffer:
            overflow = b - self.buffer
            b = self.buffer
            if self.in_rate > 0.0:
                self._accrue_drops(
                    self._rates * (overflow / self.in_rate),
                    "queue-overflow")
        self.backlog = b

    def _accrue_drops(self, units: np.ndarray, reason: str) -> None:
        for entry, dropped in zip(self._entries, units):
            if dropped <= 0.0:
                continue
            dropped_bytes = dropped / entry.scale
            entry.flow.bytes_dropped += dropped_bytes
            entry.pending_drops[reason] = \
                entry.pending_drops.get(reason, 0.0) + dropped_bytes

    def flush_drops(self) -> None:
        """Materialise whole-packet multiples of accumulated drops."""
        emit = self.drop_emitter
        for entry in self._entries:
            for reason, pending in list(entry.pending_drops.items()):
                size = entry.flow.packet_size
                packets = int(pending // size)
                if packets <= 0:
                    continue
                entry.pending_drops[reason] = pending - packets * size
                if emit is not None:
                    emit(entry.flow, reason, packets * size, packets)

    # -- per-packet composition -------------------------------------------

    def packet_wait(self, now: float,
                    priority: Optional[int] = None) -> float:
        """Extra delay a per-packet arrival sees from the fluid load.

        ``priority=None`` models a FIFO server (a CPU, a non-QoS
        link); otherwise only fluid entries with a priority at least
        as good (``<=``) block the packet, and the blocking backlog
        drains at the residual rate left over by their arrivals.
        """
        self.advance(now)
        if not self._entries:
            return 0.0
        rates = self._rates
        total = self.in_rate
        if priority is None:
            mask = None
            blocking = total
        else:
            mask = self._priorities <= priority
            blocking = float(rates[mask].sum())
        if blocking <= 0.0 and self.backlog <= 0.0:
            return 0.0
        capacity = self.capacity
        if total > 0.0:
            backlog = self.backlog * (blocking / total)
        else:
            backlog = self.backlog
        if priority is None:
            wait = backlog / capacity
        else:
            residual = capacity - blocking
            if residual > capacity * 1e-9:
                wait = backlog / residual
            else:
                wait = float("inf")     # starved; capped below
        wait += self._stationary_wait(mask, blocking)
        if self.buffer is not None:
            wait = min(wait, self.buffer / capacity)
        return wait

    def _stationary_wait(self, mask, blocking: float) -> float:
        """M/D/1-style mean-queue correction for the fluid's hidden
        stationary backlog, weighted by arrival variability."""
        if blocking <= 0.0:
            return 0.0
        if mask is None:
            varying = float((self._rates * self._vars).sum())
            pps_units = self._rates / self._upp
            pps = float(pps_units.sum())
        else:
            varying = float((self._rates * self._vars)[mask].sum())
            pps = float((self._rates / self._upp)[mask].sum())
        if varying <= 0.0 or pps <= 0.0:
            return 0.0
        rho = blocking / self.capacity
        if rho >= 1.0:
            factor = _STATIONARY_MAX
        else:
            factor = min(rho / (2.0 * (1.0 - rho)), _STATIONARY_MAX)
        service = blocking / self.capacity / pps  # mean packet service
        return (varying / blocking) * factor * service

    # -- drop-flush cadence -----------------------------------------------

    def _dropping(self) -> bool:
        if not self.up:
            return self.in_rate > 0.0
        return (self.buffer is not None
                and self.in_rate > self.capacity
                and self.backlog >= self.buffer * (1.0 - 1e-12))

    def _rearm_flush(self) -> None:
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        if not self._entries:
            return
        if self._dropping() or any(e.pending_drops for e in self._entries):
            delay = DROP_FLUSH_INTERVAL
        elif (self.up and self.buffer is not None
                and self.in_rate > self.capacity):
            fill = (self.buffer - self.backlog) \
                / (self.in_rate - self.capacity)
            delay = max(fill, 0.0) + DROP_FLUSH_INTERVAL * 1e-3
        else:
            return
        self._flush_event = self.sim.schedule(delay, self._on_flush)

    def _on_flush(self) -> None:
        self._flush_event = None
        self.advance(self.sim.now)
        self.flush_drops()
        self._rearm_flush()


class FluidDomain:
    """The set of fluid flows and queues solved together.

    One domain per simulated network: it re-solves the piecewise-
    constant rate system whenever membership, a rate, or a link state
    changes, and keeps per-flow byte accounting current at each solve.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.flows: list["FluidFlow"] = []
        self.queues: list[FluidQueue] = []
        self.resolves = 0
        self._cpu_queues: dict[str, FluidQueue] = {}

    def register_queue(self, queue: FluidQueue) -> FluidQueue:
        if queue not in self.queues:
            self.queues.append(queue)
        return queue

    def cpu_queue(self, name: str) -> FluidQueue:
        """The (unbounded, unit-capacity) fluid server for one gateway
        CPU: flows load it in CPU-seconds per second."""
        queue = self._cpu_queues.get(name)
        if queue is None:
            queue = FluidQueue(self.sim, capacity=1.0, buffer=None,
                               name=f"cpu.{name}")
            self._cpu_queues[name] = queue
            self.register_queue(queue)
        return queue

    # -- the solve --------------------------------------------------------

    def sync(self, flush: bool = True) -> None:
        """Bring accounting (flow bytes, queue backlogs) to ``now``."""
        now = self.sim.now
        for flow in self.flows:
            flow._account(now)
        for queue in self.queues:
            queue.advance(now)
            if flush:
                queue.flush_drops()

    def resolve(self) -> None:
        """Re-solve all rates after a membership/rate/state change."""
        self.sync(flush=False)
        self._solve_rates()
        for queue in self.queues:
            queue._rearm_flush()
        self.resolves += 1

    def _solve_rates(self) -> None:
        queues = self.queues
        shares = {id(q): q.share for q in queues}
        downs = {id(q): not q.up for q in queues}
        agg: dict[int, float] = {}
        for _ in range(_SOLVE_PASSES):
            agg = {id(q): 0.0 for q in queues}
            for flow in self.flows:
                rate = flow.rate / 8.0 if flow.active else 0.0  # bytes/s
                for queue, entry, _latency in flow._hops:
                    agg[id(queue)] += rate * entry.scale
                    if downs[id(queue)]:
                        rate = 0.0
                    else:
                        rate *= shares[id(queue)]
            drift = 0.0
            for queue in queues:
                a = agg[id(queue)]
                new = 1.0 if a <= queue.capacity else queue.capacity / a
                drift = max(drift, abs(new - shares[id(queue)]))
                shares[id(queue)] = new
            if drift <= _SOLVE_EPS:
                break
        # final pass: record per-entry rates/variability and per-flow
        # delivered rates under the converged shares
        for queue in queues:
            queue.in_rate = agg[id(queue)]
            queue.share = shares[id(queue)]
        for flow in self.flows:
            rate = flow.rate / 8.0 if flow.active else 0.0
            var = 1.0
            for queue, entry, _latency in flow._hops:
                entry.rate = rate * entry.scale
                entry.var = var
                if downs[id(queue)]:
                    rate = 0.0
                else:
                    rate *= shares[id(queue)]
                    if queue.in_rate > _SMOOTHING_RHO * queue.capacity:
                        var = 0.0
            flow._delivered_Bps = rate
        for queue in queues:
            if queue._entries:
                queue._rates = np.array([e.rate for e in queue._entries])
                queue._vars = np.array([e.var for e in queue._entries])


class FluidFlow:
    """One aggregated traffic flow: a rate pushed along a hop path.

    The flow models what a per-packet source plus its forwarding path
    would do in aggregate: ``rate`` bits/s of ``packet_size``-byte
    packets entering at ``src_ip``, crossing link directions and
    gateway CPUs (:meth:`add_link` / :meth:`add_server`), delivering
    whatever survives to ``dst_ip``.  Byte counters
    (``bytes_offered``/``bytes_delivered``/``bytes_dropped``) are
    integrated at every re-solve; delivery checkpoints let monitors
    reconstruct windowed series.
    """

    def __init__(self, domain: FluidDomain, name: str, src_ip: str,
                 dst_ip: str, rate: float,
                 packet_size: int = DEFAULT_FLUID_PACKET_SIZE,
                 qci: Optional[int] = None) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive bits/sec")
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        self.domain = domain
        self.sim = domain.sim
        self.name = name
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.rate = rate            # offered bits/s
        self.packet_size = packet_size
        self.qci = qci
        self.flow_id = f"fluid-{next(_flow_ids)}"
        self.active = False
        self.bytes_offered = 0.0
        self.bytes_delivered = 0.0
        self.bytes_dropped = 0.0
        self._delivered_Bps = 0.0
        self._hops: list[tuple[FluidQueue, _FlowEntry, float]] = []
        self._checkpoints: list[tuple[float, float]] = []
        self._acct_t = self.sim.now
        self._start_event: Optional["Event"] = None
        domain.flows.append(self)

    # -- path construction ------------------------------------------------

    def add_link(self, link: "FluidLink", sender: "Node") -> "FluidFlow":
        """Append the link direction out of ``sender`` to the path."""
        queue, priority = link._attach_fluid(self, sender)
        entry = queue.attach(self, scale=8.0, priority=priority)
        self._hops.append((queue, entry, link.delay))
        self.domain.register_queue(queue)
        return self

    def add_server(self, queue: FluidQueue,
                   cost_per_packet: float) -> "FluidFlow":
        """Append a serial server (a gateway CPU) to the path."""
        if cost_per_packet < 0:
            raise ValueError("cost_per_packet must be non-negative")
        entry = queue.attach(self, scale=cost_per_packet / self.packet_size)
        self._hops.append((queue, entry, 0.0))
        self.domain.register_queue(queue)
        return self

    # -- lifecycle --------------------------------------------------------

    def start(self, at: float = 0.0) -> "FluidFlow":
        if self._start_event is not None:
            self._start_event.cancel()
        if at <= 0.0:
            self._activate()
        else:
            self._start_event = self.sim.schedule(at, self._activate)
        return self

    def _activate(self) -> None:
        self._start_event = None
        if self.active:
            return
        self.active = True
        self._checkpoints.append((self.sim.now, self.bytes_delivered))
        self.domain.resolve()

    def stop(self) -> None:
        if self._start_event is not None:
            self._start_event.cancel()
            self._start_event = None
        if not self.active:
            return
        self._account(self.sim.now)
        self.active = False
        self.domain.resolve()

    def set_rate(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive bits/sec")
        self._account(self.sim.now)
        self.rate = rate
        if self.active:
            self.domain.resolve()

    # -- accounting -------------------------------------------------------

    def _account(self, now: float) -> None:
        dt = now - self._acct_t
        if dt <= 0.0:
            return
        self._acct_t = now
        if not self.active:
            return
        self.bytes_offered += self.rate / 8.0 * dt
        self.bytes_delivered += self._delivered_Bps * dt
        self._checkpoints.append((now, self.bytes_delivered))

    def sync(self) -> "FluidFlow":
        """Bring accounting current (monitors call this): byte counters
        for every flow in the domain plus backlog/drop integration for
        every queue -- drop accrual lives on the queues, so a flow-only
        account would under-report ``bytes_dropped`` between events."""
        self.domain.sync()
        return self

    @property
    def delivered_rate(self) -> float:
        """Instantaneous delivery rate at the path exit (bits/s)."""
        return self._delivered_Bps * 8.0

    @property
    def packets_delivered(self) -> int:
        return int(self.bytes_delivered // self.packet_size)

    def delivery_checkpoints(self) -> tuple[tuple[float, float], ...]:
        """``(time, cumulative delivered bytes)`` at every re-solve;
        delivery is piecewise linear between checkpoints."""
        return tuple(self._checkpoints)

    def __repr__(self) -> str:    # pragma: no cover - debugging aid
        state = "active" if self.active else "idle"
        return (f"<FluidFlow {self.name} {self.rate/1e6:.1f}Mbps "
                f"{len(self._hops)} hops {state}>")


class FluidLink(Link):
    """A :class:`Link` that carries fluid flows alongside packets.

    With no fluid flows attached the link behaves exactly like its
    base class (same schedules, same RNG draws).  With flows attached,
    per-packet arrivals on a fluid-loaded direction share its buffer
    with the fluid backlog and are delayed by the residual-bandwidth
    wait of :meth:`FluidQueue.packet_wait`.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._fluid_by_dir: dict[int, FluidQueue] = {}
        self._fluid_domain: Optional[FluidDomain] = None

    # -- fluid wiring -----------------------------------------------------

    def _attach_fluid(self, flow: FluidFlow,
                      sender: "Node") -> tuple[FluidQueue, int]:
        direction = self._directions.get(id(sender))
        if direction is None:
            raise ValueError(
                f"{sender!r} is not attached to link {self.name}")
        self._fluid_domain = flow.domain
        queue = self._fluid_by_dir.get(id(direction))
        if queue is None:
            queue = FluidQueue(
                self.sim, capacity=direction.bandwidth,
                buffer=float(self.queue_bytes) * 8.0,
                name=f"{self.name}:{sender.name}")
            queue.up = self.up
            queue.drop_emitter = self._make_drop_emitter(direction, sender)
            self._fluid_by_dir[id(direction)] = queue
        priority = (self.priority_of_qci(flow.qci) if self.qos_priority
                    else _BEST_EFFORT_PRIORITY)
        return queue, priority

    def priority_of_qci(self, qci: Optional[int]) -> int:
        if qci is None:
            return _BEST_EFFORT_PRIORITY
        return self._qci_priorities.get(qci, _BEST_EFFORT_PRIORITY)

    def fluid_queues(self) -> tuple[FluidQueue, ...]:
        return tuple(self._fluid_by_dir.values())

    def _make_drop_emitter(self, direction: "_Direction",
                           sender: "Node"):
        def emit(flow: FluidFlow, reason: str, nbytes: float,
                 packets: int) -> None:
            self.drop_counts[reason] = \
                self.drop_counts.get(reason, 0) + packets
            if reason == "queue-overflow":
                direction.drops += packets
            hooks = self.sim.hooks
            if hooks.has(PacketDropped):
                packet = Packet(
                    src=flow.src_ip, dst=flow.dst_ip,
                    size=flow.packet_size, protocol="UDP",
                    flow_id=flow.flow_id, qci=flow.qci,
                    created_at=self.sim.now,
                    meta={"fluid_packets": packets,
                          "fluid_bytes": nbytes})
                hooks.emit(PacketDropped(link=self, packet=packet,
                                         sender=sender, reason=reason))
        return emit

    # -- state changes ----------------------------------------------------

    def set_up(self, up: bool) -> None:
        if up == self.up or not self._fluid_by_dir:
            super().set_up(up)
            return
        # integrate fluid state under the old link state first, then
        # flip and re-solve every rate that crosses this link
        now = self.sim.now
        for queue in self._fluid_by_dir.values():
            queue.advance(now)
        super().set_up(up)
        for queue in self._fluid_by_dir.values():
            queue.up = up
        if self._fluid_domain is not None:
            self._fluid_domain.resolve()

    # -- per-packet data path ---------------------------------------------

    def transmit(self, sender: "Node", packet: Packet) -> None:
        direction = self._directions.get(id(sender))
        if direction is not None and self.up:
            queue = self._fluid_by_dir.get(id(direction))
            if queue is not None and queue._entries:
                # the fluid backlog occupies the same drop-tail buffer
                queue.advance(self.sim.now)
                occupied = queue.backlog / 8.0 + direction.queued_bytes
                if occupied + packet.wire_size > self.queue_bytes:
                    direction.drops += 1
                    self._signal_drop(packet, sender, "queue-overflow")
                    return
        super().transmit(sender, packet)

    def _transmit_packet(self, direction: "_Direction", packet: Packet,
                         wire_size: int) -> None:
        queue = self._fluid_by_dir.get(id(direction))
        if queue is None or not queue._entries:
            super()._transmit_packet(direction, packet, wire_size)
            return
        priority = (self.priority_of(packet) if self.qos_priority
                    else None)
        wait = queue.packet_wait(self.sim.now, priority=priority)
        receiver = direction.peer
        if receiver is None:
            raise ValueError(f"link {self.name} is not fully wired")
        direction.busy = True
        tx_time = wait + wire_size * 8 / direction.bandwidth
        direction.tx_packets += 1
        direction.tx_bytes += wire_size
        sim = self.sim
        sim._schedule_internal(tx_time + self._propagation(),
                               receiver.receive, packet, self)
        sim._schedule_internal(tx_time, self._start_transmission,
                               direction)
