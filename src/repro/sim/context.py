"""Simulation context: clock + named RNG streams + hook bus.

Experiments used to derive randomness informally (``default_rng(seed)``
here, ``default_rng(seed + 1)`` there), which couples unrelated
subsystems to the order and count of draws and makes seed collisions a
matter of luck.  :class:`SimContext` replaces that with **named,
hierarchically-derived streams**: every stream is identified by a
dotted name (``"net.jitter"``, ``"d2d.channel"``) and derived from the
root seed through :class:`numpy.random.SeedSequence` spawn keys, so

* the same ``(seed, name)`` always yields the same stream, in any
  process, regardless of which other streams were requested first;
* distinct names yield statistically independent streams -- no more
  ``seed + k`` arithmetic colliding with someone else's ``seed + k``.

The name is hashed (SHA-256) into a spawn key, which is exactly the
mechanism ``SeedSequence.spawn`` uses for its children -- the hash just
makes the key a stable function of the name instead of a call-order
counter.

The context also owns the :class:`~repro.sim.engine.Simulator` (the
clock) and its :class:`~repro.sim.hooks.HookBus`, so one object carries
everything a deterministic experiment needs.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Optional

import numpy as np

from repro.sim.engine import Event, Simulator
from repro.sim.hooks import HookBus


def _spawn_key(name: str) -> tuple[int, ...]:
    """Stable 128-bit spawn key for a stream name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return tuple(int.from_bytes(digest[i:i + 4], "little")
                 for i in range(0, 16, 4))


def derive_seed(*components: Any) -> int:
    """Collapse arbitrary components into a stable 63-bit seed.

    Process-independent (no ``hash()``), so parallel workers derive the
    same seed as a serial run.
    """
    text = "\x1f".join(repr(c) for c in components)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") >> 1


class SimContext:
    """Deterministic substrate for one simulation run."""

    def __init__(self, seed: int = 0, sim: Optional[Simulator] = None) -> None:
        self.seed = int(seed)
        self.sim = sim if sim is not None else Simulator()
        self._streams: dict[str, np.random.Generator] = {}

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any, priority: int = 0) -> Event:
        return self.sim.schedule(delay, fn, *args, priority=priority)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        self.sim.run(until=until, max_events=max_events)

    # -- hooks ------------------------------------------------------------

    @property
    def hooks(self) -> HookBus:
        return self.sim.hooks

    # -- named RNG streams -------------------------------------------------

    def seed_sequence(self, name: str) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` behind stream ``name``."""
        return np.random.SeedSequence(entropy=self.seed,
                                      spawn_key=_spawn_key(name))

    def rng(self, name: str) -> np.random.Generator:
        """The named stream's generator (cached: one per name)."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self.seed_sequence(name))
            self._streams[name] = gen
        return gen

    def stream_names(self) -> tuple[str, ...]:
        """Streams materialised so far (diagnostics / provenance)."""
        return tuple(sorted(self._streams))

    def child(self, name: str) -> "SimContext":
        """A fresh context (own clock, bus and streams) whose root seed
        is derived from this context's seed and ``name``."""
        return SimContext(derive_seed(self.seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimContext seed={self.seed} t={self.sim.now:.6f} "
                f"streams={len(self._streams)}>")
