"""Declarative scenario layer: one document from topology to chaos.

A scenario is a single versioned JSON (or YAML, when PyYAML is
around) document describing everything about a run -- topology,
config overlays, traffic mix, mobility, fault plan, sweep axes and
seeds.  The layer splits into:

* :mod:`repro.scenario.schema` -- the published document schema and a
  dependency-free validator with path-qualified errors;
* :mod:`repro.scenario.document` -- the validated :class:`Scenario`
  object, its content :meth:`~Scenario.digest` and compilation into
  an :class:`~repro.exp.spec.ExperimentSpec`;
* :mod:`repro.scenario.loader` -- file loading plus the shipped
  ``scenarios/`` catalogue;
* :mod:`repro.scenario.runtime` -- the interpreter behind the generic
  ``"scenario"`` workload.

This package is the only one allowed to turn raw document dicts into
deployments (see the layering gates in ``tests/test_layering.py``),
and it must not import :mod:`repro.exp` at module scope -- presets
are built *from* scenarios, so the dependency points the other way.
"""

from repro.scenario.document import (GENERIC_WORKLOAD,
                                     INTERPRETED_SECTIONS, Scenario,
                                     canonical_json)
from repro.scenario.loader import (CATALOGUE_DIR, catalogue, load,
                                   load_path, parse_text)
from repro.scenario.schema import (SCHEMA, ScenarioError,
                                   ScenarioValidationError, validate)

__all__ = [
    "CATALOGUE_DIR",
    "GENERIC_WORKLOAD",
    "INTERPRETED_SECTIONS",
    "SCHEMA",
    "Scenario",
    "ScenarioError",
    "ScenarioValidationError",
    "canonical_json",
    "catalogue",
    "load",
    "load_path",
    "parse_text",
    "validate",
]
