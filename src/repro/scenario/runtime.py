"""Interpreter for the generic ``"scenario"`` workload.

:func:`execute` receives one :class:`~repro.exp.spec.TrialSpec` whose
params carry the scenario document's interpreted sections (placed
there by :meth:`repro.scenario.document.Scenario.compile`) and builds
the whole world from them:

* ``topology`` -> :func:`repro.baselines.deployments.build_topology`
  (cells on a line, one CI echo server per edge site, WAN mesh);
* ``network`` -> :meth:`~repro.core.config.NetworkConfig.from_dict`
  overlay (the trial seed always wins over the document);
* ``traffic.ci`` -> an attach storm in the first cell plus per-UE
  probe trains, either through MRS-granted edge sessions (``path:
  "edge"``, retargeted across relocations) or the conventional
  central path (``path: "central"``);
* ``traffic.background`` -> aggregate load through a site's gateways;
* ``mobility`` -> staggered walks down the whole line of cells;
* ``faults`` -> a :class:`~repro.faults.plan.FaultPlan` armed before
  the attach storm, so document times are absolute sim times;
* ``run`` -> the warmup / duration / tail phase lengths.

Sweep axes (and ``experiment.params``) may override the documented
scalar shortcuts in :data:`OVERRIDES` -- e.g. a ``n_ues`` axis scales
the CI population without rewriting the ``traffic`` section.  Anything
else at the top level of the params is rejected, so a typoed axis
fails loudly instead of silently not sweeping.

The timeline is fixed: attaches run during ``[0, warmup)``; sessions,
probes, walks and background all start at ``warmup + 1.0`` (the lead
second lets dedicated bearers establish); the sim then runs for
``duration`` plus ``tail`` and the metrics are collected.
"""

from __future__ import annotations

import copy
from typing import Any, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.exp.spec import TrialSpec

#: Scalar shortcuts sweep axes / params may override, mapped to the
#: document path they rewrite.
OVERRIDES = {
    "n_ues": "traffic.ci.n_ues",
    "bg_mbps": "traffic.background.mbps",
    "policy": "network.continuity.policy",
    "data_plane": "network.sim.data_plane",
    "retries": "network.resilience.enabled",
    "sites": "topology.sites",
    "enbs_per_site": "topology.enbs_per_site",
    "speed": "mobility.speed",
    "loss_rate": "faults[*].rate (channel_loss entries)",
    "duration": "run.duration",
}

_SECTIONS = ("topology", "network", "traffic", "mobility", "faults",
             "run")


def _apply_overrides(p: dict[str, Any]) -> dict[str, Any]:
    """Split params into sections, folding scalar overrides in."""
    sections = {name: copy.deepcopy(p.pop(name, None))
                for name in _SECTIONS}
    overrides = {k: p.pop(k) for k in list(p) if k in OVERRIDES}
    if p:
        raise ValueError(
            f"unknown scenario param(s) {sorted(p)}; sections: "
            f"{sorted(_SECTIONS)}, overridable scalars: "
            f"{sorted(OVERRIDES)}")

    def section(name: str) -> dict:
        if sections[name] is None:
            sections[name] = {}
        return sections[name]

    if "n_ues" in overrides:
        section("traffic").setdefault("ci", {})["n_ues"] = \
            int(overrides["n_ues"])
    if "bg_mbps" in overrides:
        section("traffic").setdefault("background", {})["mbps"] = \
            float(overrides["bg_mbps"])
    if "policy" in overrides:
        section("network").setdefault("continuity", {})["policy"] = \
            overrides["policy"]
    if "data_plane" in overrides:
        section("network").setdefault("sim", {})["data_plane"] = \
            overrides["data_plane"]
    if "retries" in overrides:
        section("network").setdefault("resilience", {})["enabled"] = \
            bool(overrides["retries"])
    if "sites" in overrides:
        section("topology")["sites"] = int(overrides["sites"])
    if "enbs_per_site" in overrides:
        section("topology")["enbs_per_site"] = \
            int(overrides["enbs_per_site"])
    if "speed" in overrides:
        section("mobility")["speed"] = float(overrides["speed"])
    if "duration" in overrides:
        section("run")["duration"] = float(overrides["duration"])
    if "loss_rate" in overrides:
        rate = float(overrides["loss_rate"])
        faults = sections["faults"] or []
        targets = [f for f in faults
                   if f.get("type") == "channel_loss"]
        if not targets:
            raise ValueError(
                "loss_rate override needs at least one channel_loss "
                "entry in the faults section to rewrite")
        for f in targets:
            f["rate"] = rate
        sections["faults"] = faults
    return sections


def execute(trial: "TrialSpec") -> dict[str, Any]:
    """Run one scenario trial; see the module docstring."""
    from repro.apps.mobility import MobilityManager
    from repro.apps.scenario import WalkPath
    from repro.baselines.deployments import build_topology
    from repro.core.config import NetworkConfig
    from repro.core.events import SessionRelocated
    from repro.core.network import Pinger
    from repro.faults import FaultInjector, FaultPlan

    sections = _apply_overrides(dict(trial.param_dict))
    topology = sections["topology"] or {}
    traffic = sections["traffic"] or {}
    mobility = sections["mobility"]
    run = sections["run"] or {}

    ci = dict(traffic.get("ci", {}))
    n_ues = int(ci.get("n_ues", 8))
    path = ci.get("path", "edge")
    ping_interval = float(ci.get("ping_interval", 0.2))
    ping_size = int(ci.get("ping_size", 64))
    background = dict(traffic.get("background", {}))
    bg_mbps = float(background.get("mbps", 0.0))
    bg_site = background.get("site", "central")

    config = NetworkConfig.from_dict(sections["network"] or {},
                                     path="network")
    config.seed = trial.seed
    fabric = build_topology(topology, config=config)
    network = fabric.network
    mrs = fabric.mrs
    n_cells = len(fabric.enb_positions)
    cell_spacing = float(topology.get("cell_spacing", 100.0))

    warmup = float(run.get("warmup", 1.0))
    tail = float(run.get("tail", 2.0))
    speed = stagger = walk_duration = 0.0
    if mobility is not None:
        speed = float(mobility.get("speed", 25.0))
        stagger = float(mobility.get("stagger", 0.05))
        walk_duration = cell_spacing * (n_cells - 1) / speed
    duration = float(run.get("duration",
                             walk_duration + n_ues * stagger
                             if mobility is not None else 10.0))
    probes = int(ci.get("probes", duration / ping_interval
                        if ping_interval > 0 else 0))

    plan = FaultPlan.from_dict(sections["faults"] or [],
                               path="faults")
    injector = None
    if plan.faults:
        injector = FaultInjector(network, plan)
        injector.arm()

    # phase 1: attach storm in the first cell
    attach_procs = [network.add_ue_async(enb_name="enb0")
                    for _ in range(n_ues)]
    network.sim.run(until=warmup)
    ues = []
    attach_outcomes: dict[str, int] = {}
    for proc in attach_procs:
        if not proc.finished:
            attach_outcomes["unfinished"] = \
                attach_outcomes.get("unfinished", 0) + 1
            continue
        assert proc.error is None, proc.error
        result = proc.value.attach_result
        outcome = result.outcome if result is not None else "none"
        attach_outcomes[outcome] = attach_outcomes.get(outcome, 0) + 1
        if proc.value.attached:
            ues.append(proc.value)

    # phase 2: sessions, probes, walks, background load
    relocated: list[SessionRelocated] = []
    pingers: dict[str, Pinger] = {}

    def on_relocated(event: SessionRelocated) -> None:
        relocated.append(event)
        pinger = pingers.get(event.imsi)
        if pinger is not None:
            server_name = fabric.server_of_site[event.to_site]
            pinger.server = network.servers[server_name]

    network.hooks.on(SessionRelocated, on_relocated)

    session_failures = 0

    def request_session(ue) -> None:
        # scheduled (not called inline) so the synchronous bearer
        # activation inside cannot drain armed future fault events;
        # run_until_complete is reentrant from an event callback
        nonlocal session_failures
        try:
            mrs.request_connectivity(ue, fabric.service_id)
        except LookupError:
            session_failures += 1

    if path == "edge":
        for ue in ues:
            network.sim.schedule(0.0, request_session, ue)
        target = fabric.server_of_site["edge0"]
    else:
        target = "internet"

    if bg_mbps > 0:
        network.add_background_load(rate=bg_mbps * 1e6,
                                    site_name=bg_site).start()

    start_at = warmup + 1.0
    users: list[Any] = []
    if mobility is not None:
        manager = MobilityManager(
            network, fabric.enb_positions,
            update_interval=float(mobility.get("update_interval", 0.5)),
            hysteresis=float(mobility.get("hysteresis", 3.0)),
            hysteresis_db=float(mobility.get("hysteresis_db", 0.0)))
        end_x = cell_spacing * (n_cells - 1)
        for i, ue in enumerate(ues):
            walk = WalkPath(waypoints=[(0.0, 0.0), (end_x, 0.0)],
                            speed=speed)
            network.sim.schedule(
                start_at + i * stagger - network.sim.now,
                lambda u=ue, w=walk: users.append(
                    manager.add_mobile(u, w)))

    if ping_interval > 0 and probes > 0:
        for i, ue in enumerate(ues):
            pinger = Pinger(network, ue, target, size=ping_size,
                            interval=ping_interval)
            pinger.run(count=probes, start=start_at + i * stagger)
            pingers[ue.imsi] = pinger

    network.sim.run(until=start_at + n_ues * stagger + duration + tail)
    for pinger in pingers.values():
        pinger.close()

    sessions_alive = 0
    if path == "edge":
        for ue in ues:
            session = mrs.session_for(ue, fabric.service_id)
            if session is None:
                continue
            bearer = ue.bearers.bearers.get(session.ebi)
            if bearer is not None and bearer.active:
                sessions_alive += 1

    rtts = [r for pg in pingers.values() for r in pg.rtts]
    interruptions = [e.interruption for e in relocated]
    return {
        "n_ues": n_ues,
        "path": path,
        "attached": len(ues),
        "attach_outcomes": dict(sorted(attach_outcomes.items())),
        "sessions_alive": sessions_alive,
        "session_failures": session_failures,
        "handovers": sum(len(u.handovers) for u in users),
        "relocations_started": mrs.relocations_started,
        "relocations_completed": mrs.relocations_completed,
        "interruption_ms_mean": (float(np.mean(interruptions)) * 1e3
                                 if interruptions else 0.0),
        "pings_answered": len(rtts),
        "pings_lost": sum(pg.lost for pg in pingers.values()),
        "median_rtt_ms": (float(np.median(rtts)) * 1e3
                          if rtts else 0.0),
        "p95_rtt_ms": (float(np.percentile(rtts, 95)) * 1e3
                       if rtts else 0.0),
        "faults_injected": (injector.injected if injector else 0),
        "faults_cleared": (injector.cleared if injector else 0),
        "retransmissions": network.fabric.retransmissions,
        "signalling_drops": dict(sorted(network.fabric.drops.items())),
        "events_run": network.sim.events_run,
    }
