"""Interpreter for the generic ``"scenario"`` workload.

:func:`execute` receives one :class:`~repro.exp.spec.TrialSpec` whose
params carry the scenario document's interpreted sections (placed
there by :meth:`repro.scenario.document.Scenario.compile`) and builds
the whole world from them:

* ``topology`` -> :func:`repro.baselines.deployments.build_topology`
  (cells on a line, one CI echo server per edge site, WAN mesh);
* ``network`` -> :meth:`~repro.core.config.NetworkConfig.from_dict`
  overlay (the trial seed always wins over the document);
* ``traffic.ci`` -> an attach storm in the first cell plus per-UE
  probe trains, either through MRS-granted edge sessions (``path:
  "edge"``, retargeted across relocations) or the conventional
  central path (``path: "central"``);
* ``traffic.background`` -> aggregate load through a site's gateways;
* ``mobility`` -> staggered walks down the whole line of cells;
* ``faults`` -> a :class:`~repro.faults.plan.FaultPlan` armed before
  the attach storm, so document times are absolute sim times;
* ``run`` -> the warmup / duration / tail phase lengths.

Sweep axes (and ``experiment.params``) may override the documented
scalar shortcuts in :data:`OVERRIDES` -- e.g. a ``n_ues`` axis scales
the CI population without rewriting the ``traffic`` section.  Anything
else at the top level of the params is rejected, so a typoed axis
fails loudly instead of silently not sweeping.

The timeline is fixed: attaches run during ``[0, warmup)``; sessions,
probes, walks and background all start at ``warmup + 1.0`` (the lead
second lets dedicated bearers establish); the sim then runs for
``duration`` plus ``tail`` and the metrics are collected.
"""

from __future__ import annotations

import copy
from typing import Any, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.exp.spec import TrialSpec

#: Scalar shortcuts sweep axes / params may override, mapped to the
#: document path they rewrite.
OVERRIDES = {
    "n_ues": "traffic.ci.n_ues",
    "bg_mbps": "traffic.background.mbps",
    "policy": "network.continuity.policy",
    "data_plane": "network.sim.data_plane",
    "sharding": "network.sim.sharding",
    "retries": "network.resilience.enabled",
    "sites": "topology.sites",
    "enbs_per_site": "topology.enbs_per_site",
    "speed": "mobility.speed",
    "loss_rate": "faults[*].rate (channel_loss entries)",
    "duration": "run.duration",
}

_SECTIONS = ("topology", "network", "traffic", "mobility", "faults",
             "run", "ops")


def _apply_overrides(p: dict[str, Any]) -> dict[str, Any]:
    """Split params into sections, folding scalar overrides in."""
    sections = {name: copy.deepcopy(p.pop(name, None))
                for name in _SECTIONS}
    overrides = {k: p.pop(k) for k in list(p) if k in OVERRIDES}
    if p:
        raise ValueError(
            f"unknown scenario param(s) {sorted(p)}; sections: "
            f"{sorted(_SECTIONS)}, overridable scalars: "
            f"{sorted(OVERRIDES)}")

    def section(name: str) -> dict:
        if sections[name] is None:
            sections[name] = {}
        return sections[name]

    if "n_ues" in overrides:
        section("traffic").setdefault("ci", {})["n_ues"] = \
            int(overrides["n_ues"])
    if "bg_mbps" in overrides:
        section("traffic").setdefault("background", {})["mbps"] = \
            float(overrides["bg_mbps"])
    if "policy" in overrides:
        section("network").setdefault("continuity", {})["policy"] = \
            overrides["policy"]
    if "data_plane" in overrides:
        section("network").setdefault("sim", {})["data_plane"] = \
            overrides["data_plane"]
    if "sharding" in overrides:
        section("network").setdefault("sim", {})["sharding"] = \
            overrides["sharding"]
    if "retries" in overrides:
        section("network").setdefault("resilience", {})["enabled"] = \
            bool(overrides["retries"])
    if "sites" in overrides:
        section("topology")["sites"] = int(overrides["sites"])
    if "enbs_per_site" in overrides:
        section("topology")["enbs_per_site"] = \
            int(overrides["enbs_per_site"])
    if "speed" in overrides:
        section("mobility")["speed"] = float(overrides["speed"])
    if "duration" in overrides:
        section("run")["duration"] = float(overrides["duration"])
    if "loss_rate" in overrides:
        rate = float(overrides["loss_rate"])
        faults = sections["faults"] or []
        targets = [f for f in faults
                   if f.get("type") == "channel_loss"]
        if not targets:
            raise ValueError(
                "loss_rate override needs at least one channel_loss "
                "entry in the faults section to rewrite")
        for f in targets:
            f["rate"] = rate
        sections["faults"] = faults
    return sections


class ScenarioRun:
    """One scenario trial as a *steerable* object.

    :func:`execute` used to be a single straight-line function; the
    operator service (:mod:`repro.ops`) needs the same world but
    advanced incrementally under a wall-clock pacer, with control-API
    mutations interleaved.  Construction performs the entire
    time-zero setup -- overrides, topology build, fault arming and the
    attach storm spawn -- and :meth:`milestones` returns the timeline
    boundaries with their callbacks:

    ``[(warmup, phase2), (end_time, finish)]``

    A driver must run the simulator to each boundary (in any number of
    ``sim.run(until=...)`` slices -- chunked runs park the clock
    exactly like one call) and then invoke the callback before
    advancing further.  :meth:`collect` afterwards returns the metrics
    dict.  The batch path (:func:`execute`) drives the milestones
    back-to-back, which reproduces the original straight-line function
    byte-for-byte; the ops pacer interleaves slices with asyncio
    turns.

    The ``ops`` document section is *not* interpreted here: batch runs
    ignore it (it configures the operator runtime only), which keeps
    ``scenario`` importable without :mod:`repro.ops`.
    """

    def __init__(self, trial: "TrialSpec") -> None:
        from repro.baselines.deployments import build_topology
        from repro.core.config import NetworkConfig
        from repro.faults import FaultInjector, FaultPlan

        self.trial = trial
        sections = _apply_overrides(dict(trial.param_dict))
        self.sections = sections
        self.topology = sections["topology"] or {}
        traffic = sections["traffic"] or {}
        self.mobility = sections["mobility"]
        run = sections["run"] or {}
        self.ops_section = sections["ops"]

        ci = dict(traffic.get("ci", {}))
        self.n_ues = int(ci.get("n_ues", 8))
        self.path = ci.get("path", "edge")
        self.ping_interval = float(ci.get("ping_interval", 0.2))
        self.ping_size = int(ci.get("ping_size", 64))
        background = dict(traffic.get("background", {}))
        self.bg_mbps = float(background.get("mbps", 0.0))
        self.bg_site = background.get("site", "central")

        config = NetworkConfig.from_dict(sections["network"] or {},
                                         path="network")
        config.seed = trial.seed
        self.config = config
        self.fabric = build_topology(self.topology, config=config)
        self.network = self.fabric.network
        self.mrs = self.fabric.mrs
        self.n_cells = len(self.fabric.enb_positions)
        self.cell_spacing = float(self.topology.get("cell_spacing", 100.0))

        self.warmup = float(run.get("warmup", 1.0))
        self.tail = float(run.get("tail", 2.0))
        self.speed = self.stagger = walk_duration = 0.0
        if self.mobility is not None:
            self.speed = float(self.mobility.get("speed", 25.0))
            self.stagger = float(self.mobility.get("stagger", 0.05))
            walk_duration = (self.cell_spacing * (self.n_cells - 1)
                             / self.speed)
        self.duration = float(run.get(
            "duration",
            walk_duration + self.n_ues * self.stagger
            if self.mobility is not None else 10.0))
        self.probes = int(ci.get(
            "probes", self.duration / self.ping_interval
            if self.ping_interval > 0 else 0))
        self.start_at = self.warmup + 1.0
        self.end_time = (self.start_at + self.n_ues * self.stagger
                         + self.duration + self.tail)

        plan = FaultPlan.from_dict(sections["faults"] or [],
                                   path="faults")
        self.injector = None
        if plan.faults:
            self.injector = FaultInjector(self.network, plan)
            self.injector.arm()

        # phase 1: attach storm in the first cell
        self._attach_procs = [self.network.add_ue_async(enb_name="enb0")
                              for _ in range(self.n_ues)]

        self.ues: list[Any] = []
        self.attach_outcomes: dict[str, int] = {}
        self.relocated: list[Any] = []
        self.pingers: dict[str, Any] = {}
        self.users: list[Any] = []
        self.session_failures = 0
        self.target: Optional[str] = None
        self.manager: Optional[Any] = None

    @property
    def sim(self):
        return self.network.sim

    def milestones(self) -> list[tuple[float, Any]]:
        """Timeline boundaries as ``(sim_time, callback)`` pairs.

        Run the simulator to each time (any slicing), then call the
        callback, in order.
        """
        return [(self.warmup, self.phase2), (self.end_time, self.finish)]

    # -- milestone callbacks ----------------------------------------------

    def phase2(self) -> None:
        """Collect attach outcomes; start sessions, probes, walks and
        background load.  Call once the clock has reached ``warmup``."""
        from repro.apps.mobility import MobilityManager
        from repro.apps.scenario import WalkPath
        from repro.core.events import SessionRelocated
        from repro.core.network import Pinger

        network = self.network
        for proc in self._attach_procs:
            if not proc.finished:
                self.attach_outcomes["unfinished"] = \
                    self.attach_outcomes.get("unfinished", 0) + 1
                continue
            assert proc.error is None, proc.error
            result = proc.value.attach_result
            outcome = result.outcome if result is not None else "none"
            self.attach_outcomes[outcome] = \
                self.attach_outcomes.get(outcome, 0) + 1
            if proc.value.attached:
                self.ues.append(proc.value)

        # phase 2: sessions, probes, walks, background load
        def on_relocated(event: SessionRelocated) -> None:
            self.relocated.append(event)
            pinger = self.pingers.get(event.imsi)
            if pinger is not None:
                server_name = self.fabric.server_of_site[event.to_site]
                pinger.server = network.servers[server_name]

        network.hooks.on(SessionRelocated, on_relocated)

        if self.path == "edge":
            for ue in self.ues:
                network.sim.schedule(0.0, self.request_session, ue)
            self.target = self.fabric.server_of_site["edge0"]
        else:
            self.target = "internet"

        if self.bg_mbps > 0:
            network.add_background_load(rate=self.bg_mbps * 1e6,
                                        site_name=self.bg_site).start()

        start_at = self.start_at
        if self.mobility is not None:
            mobility = self.mobility
            self.manager = manager = MobilityManager(
                network, self.fabric.enb_positions,
                update_interval=float(mobility.get("update_interval", 0.5)),
                hysteresis=float(mobility.get("hysteresis", 3.0)),
                hysteresis_db=float(mobility.get("hysteresis_db", 0.0)))
            end_x = self.cell_spacing * (self.n_cells - 1)
            for i, ue in enumerate(self.ues):
                walk = WalkPath(waypoints=[(0.0, 0.0), (end_x, 0.0)],
                                speed=self.speed)
                network.sim.schedule(
                    start_at + i * self.stagger - network.sim.now,
                    lambda u=ue, w=walk: self.users.append(
                        manager.add_mobile(u, w)))

        if self.ping_interval > 0 and self.probes > 0:
            for i, ue in enumerate(self.ues):
                pinger = Pinger(network, ue, self.target,
                                size=self.ping_size,
                                interval=self.ping_interval)
                pinger.run(count=self.probes,
                           start=start_at + i * self.stagger)
                self.pingers[ue.imsi] = pinger

    def request_session(self, ue) -> None:
        # scheduled (not called inline) so the synchronous bearer
        # activation inside cannot drain armed future fault events;
        # run_until_complete is reentrant from an event callback
        try:
            self.mrs.request_connectivity(ue, self.fabric.service_id)
        except LookupError:
            self.session_failures += 1

    def finish(self) -> None:
        """Stop probes.  Call once the clock has reached ``end_time``."""
        for pinger in self.pingers.values():
            pinger.close()

    # -- results -----------------------------------------------------------

    def sessions_alive(self) -> int:
        count = 0
        if self.path == "edge":
            for ue in self.ues:
                session = self.mrs.session_for(ue, self.fabric.service_id)
                if session is None:
                    continue
                bearer = ue.bearers.bearers.get(session.ebi)
                if bearer is not None and bearer.active:
                    count += 1
        return count

    def collect(self) -> dict[str, Any]:
        """The scenario metrics dict (same keys as the historical
        straight-line ``execute``)."""
        network = self.network
        injector = self.injector
        rtts = [r for pg in self.pingers.values() for r in pg.rtts]
        interruptions = [e.interruption for e in self.relocated]
        return {
            "n_ues": self.n_ues,
            "path": self.path,
            "attached": len(self.ues),
            "attach_outcomes": dict(sorted(self.attach_outcomes.items())),
            "sessions_alive": self.sessions_alive(),
            "session_failures": self.session_failures,
            "handovers": sum(len(u.handovers) for u in self.users),
            "relocations_started": self.mrs.relocations_started,
            "relocations_completed": self.mrs.relocations_completed,
            "interruption_ms_mean": (float(np.mean(interruptions)) * 1e3
                                     if interruptions else 0.0),
            "pings_answered": len(rtts),
            "pings_lost": sum(pg.lost for pg in self.pingers.values()),
            "median_rtt_ms": (float(np.median(rtts)) * 1e3
                              if rtts else 0.0),
            "p95_rtt_ms": (float(np.percentile(rtts, 95)) * 1e3
                           if rtts else 0.0),
            "faults_injected": (injector.injected if injector else 0),
            "faults_cleared": (injector.cleared if injector else 0),
            "retransmissions": network.fabric.retransmissions,
            "signalling_drops": dict(sorted(network.fabric.drops.items())),
            "events_run": network.sim.events_run,
        }


def execute(trial: "TrialSpec") -> dict[str, Any]:
    """Run one scenario trial; see the module docstring."""
    run = ScenarioRun(trial)
    for time, callback in run.milestones():
        run.sim.run(until=time)
        callback()
    return run.collect()
