"""Loading scenario documents from disk and the shipped catalogue.

JSON is the native format (stdlib only); YAML documents load too when
PyYAML is importable -- the dependency is gated, never required, so
the scenario layer works on a bare ``numpy``-only install.  The
shipped catalogue lives in ``scenarios/`` at the repository root; the
preset layer (:mod:`repro.exp.presets`) and the ``scenario`` CLI both
resolve names through :func:`catalogue` / :func:`load`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from repro.scenario.document import Scenario
from repro.scenario.schema import ScenarioError

#: The shipped scenario catalogue (``<repo>/scenarios``).
CATALOGUE_DIR = Path(__file__).resolve().parents[3] / "scenarios"

_SUFFIXES = (".json", ".yaml", ".yml")


def parse_text(text: str, format: str = "json") -> dict:
    """Parse a document body; ``format`` is ``"json"`` or ``"yaml"``."""
    if format == "json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"not valid JSON: {exc}") from None
    if format in ("yaml", "yml"):
        try:
            import yaml
        except ImportError:
            raise ScenarioError(
                "YAML scenario documents need PyYAML installed; "
                "rewrite the document as JSON or `pip install pyyaml`"
            ) from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(f"not valid YAML: {exc}") from None
        if not isinstance(data, dict):
            raise ScenarioError("a YAML scenario document must be a "
                                "mapping at the top level")
        return data
    raise ScenarioError(f"unknown document format {format!r}; "
                        "expected 'json' or 'yaml'")


def load_path(path: str | Path) -> Scenario:
    """Load and validate one scenario document from a file."""
    path = Path(path)
    if path.suffix not in _SUFFIXES:
        raise ScenarioError(
            f"{path.name}: unknown scenario suffix {path.suffix!r}; "
            f"expected one of {list(_SUFFIXES)}")
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read {path}: {exc}") from None
    data = parse_text(text, path.suffix.lstrip("."))
    scenario = Scenario.from_dict(data)
    stem = path.stem
    if scenario.name != stem:
        raise ScenarioError(
            f"{path.name}: scenario.name {scenario.name!r} must match "
            f"the file stem {stem!r}")
    return scenario


def catalogue(directory: Optional[Path] = None) -> dict[str, Path]:
    """Name -> path of every document in the catalogue, sorted."""
    directory = CATALOGUE_DIR if directory is None else Path(directory)
    if not directory.is_dir():
        return {}
    return {path.stem: path
            for path in sorted(directory.iterdir())
            if path.suffix in _SUFFIXES}


def load(name_or_path: str, directory: Optional[Path] = None) -> Scenario:
    """Resolve a catalogue name or an explicit path to a scenario."""
    entries = catalogue(directory)
    if name_or_path in entries:
        return load_path(entries[name_or_path])
    path = Path(name_or_path)
    if path.suffix in _SUFFIXES and path.exists():
        return load_path(path)
    raise ScenarioError(
        f"unknown scenario {name_or_path!r}; catalogue names: "
        f"{sorted(entries)} (or pass a .json/.yaml path)")
