"""The scenario-document schema and its validator.

:data:`SCHEMA` is the single published description of a scenario
document (exported verbatim to ``docs/scenario.schema.json``); the
``network`` section's properties are generated from the
:mod:`repro.core.config` dataclasses and the fault-type inventory from
:data:`repro.faults.plan.FAULT_TYPES`, so the schema can never drift
from the code it describes.

:func:`validate` checks an instance against the schema with **no
third-party dependencies** (the subset of JSON Schema the document
needs: ``type``, ``enum``, ``required``, ``properties``,
``additionalProperties``, ``items``, numeric bounds, ``minItems``,
``pattern``).  Errors are :class:`ScenarioValidationError` with a
JSON-pointer-style dotted path (``topology.sites``,
``faults[2].type``) so a bad document names its exact offending key.

Field-level strictness the schema cannot express (fault-spec fields
per type, config cross-field constraints) is enforced when the
document is deserialised -- see
:meth:`repro.scenario.document.Scenario.from_dict` -- with the same
path-qualified error style.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Mapping

from repro.core.config import (DataPlaneProfile, NESTED_CONFIG_FIELDS,
                               NetworkConfig)
from repro.faults.plan import FAULT_TYPES


class ScenarioError(ValueError):
    """Base class of every scenario-layer error."""


class ScenarioValidationError(ScenarioError):
    """A document failed schema validation; ``path`` names the key."""

    def __init__(self, path: str, message: str) -> None:
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


#: python field-annotation -> JSON-schema type
_TYPE_MAP = {
    "float": "number",
    "int": "integer",
    "bool": "boolean",
    "str": "string",
    "Optional[float]": ["number", "null"],
    "Optional[int]": ["integer", "null"],
    "str | None": ["string", "null"],
    "Optional[str]": ["string", "null"],
}


def _config_properties(cls) -> dict[str, Any]:
    """JSON-schema ``properties`` for one config dataclass."""
    nested = NESTED_CONFIG_FIELDS.get(cls, {})
    props: dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name == "seed":
            continue        # seeds come from the experiment section
        if f.name in nested:
            nested_cls = nested[f.name]
            if nested_cls is DataPlaneProfile:
                props[f.name] = {"type": ["string", "object"]}
            else:
                props[f.name] = {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": _config_properties(nested_cls),
                }
            continue
        schema_type = _TYPE_MAP.get(str(f.type))
        props[f.name] = {"type": schema_type} if schema_type else {}
    return props


_NAME_PATTERN = r"^[A-Za-z0-9][A-Za-z0-9_.-]*$"

#: The published scenario-document schema (one version per document's
#: ``scenario.version``; this is version 1).
SCHEMA: dict[str, Any] = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "$id": "https://acacia-repro.invalid/scenario.schema.json",
    "title": "ACACIA reproduction scenario document",
    "type": "object",
    "required": ["scenario", "experiment"],
    "additionalProperties": False,
    "properties": {
        "scenario": {
            "type": "object",
            "required": ["name", "version", "description"],
            "additionalProperties": False,
            "properties": {
                "name": {"type": "string", "pattern": _NAME_PATTERN},
                "version": {"type": "integer", "enum": [1]},
                "description": {"type": "string"},
                "tags": {"type": "array", "items": {"type": "string"}},
            },
        },
        "network": {
            "type": "object",
            "additionalProperties": False,
            "properties": _config_properties(NetworkConfig),
        },
        "topology": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "sites": {"type": "integer", "minimum": 1},
                "enbs_per_site": {"type": "integer", "minimum": 1},
                "cell_spacing": {"type": "number",
                                 "exclusiveMinimum": 0},
            },
        },
        "traffic": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "ci": {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": {
                        "n_ues": {"type": "integer", "minimum": 0},
                        "path": {"enum": ["edge", "central"]},
                        "ping_interval": {"type": "number",
                                          "minimum": 0},
                        "ping_size": {"type": "integer",
                                      "exclusiveMinimum": 0},
                        "probes": {"type": "integer", "minimum": 0},
                    },
                },
                "background": {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": {
                        "mbps": {"type": "number", "minimum": 0},
                        "site": {"type": "string"},
                    },
                },
            },
        },
        "mobility": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "speed": {"type": "number", "exclusiveMinimum": 0},
                "stagger": {"type": "number", "minimum": 0},
                "hysteresis": {"type": "number", "minimum": 0},
                "hysteresis_db": {"type": "number", "minimum": 0},
                "update_interval": {"type": "number",
                                    "exclusiveMinimum": 0},
            },
        },
        "faults": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["type"],
                "properties": {
                    "type": {"enum": sorted(FAULT_TYPES)},
                },
            },
        },
        "run": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "warmup": {"type": "number", "minimum": 0},
                "duration": {"type": "number", "minimum": 0},
                "tail": {"type": "number", "minimum": 0},
            },
        },
        # interpreted only by the operator runtime (repro.ops); batch
        # runs ignore it.  Kept literal here -- scenario must stay
        # importable without ops -- and pinned to the repro.ops.config
        # dataclasses by a test.
        "ops": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "pacer": {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": {
                        "rtf": {"type": "number", "minimum": 0},
                        "quantum": {"type": "number",
                                    "exclusiveMinimum": 0},
                    },
                },
                "telemetry": {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": {
                        "gauge_interval": {"type": "number",
                                           "exclusiveMinimum": 0},
                        "window": {"type": "integer",
                                   "exclusiveMinimum": 0},
                    },
                },
                "matcher": {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": {
                        "service_time": {"type": "number",
                                         "exclusiveMinimum": 0},
                        "jitter": {"type": "number", "minimum": 0},
                    },
                },
                "autoscaler": {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": {
                        "enabled": {"type": "boolean"},
                        "min_workers": {"type": "integer", "minimum": 1},
                        "max_workers": {"type": "integer", "minimum": 1},
                        "high_queue": {"type": "number", "minimum": 0},
                        "low_queue": {"type": "number", "minimum": 0},
                        "high_p99_ms": {"type": "number", "minimum": 0},
                        "low_p99_ms": {"type": "number", "minimum": 0},
                        "sustain": {"type": "integer", "minimum": 1},
                        "cooldown": {"type": "number", "minimum": 0},
                        "step": {"type": "integer", "minimum": 1},
                        "interval": {"type": "number",
                                     "exclusiveMinimum": 0},
                    },
                },
                "load": {
                    "type": "object",
                    "additionalProperties": False,
                    "properties": {
                        "base_rps": {"type": "number", "minimum": 0},
                        "peak_rps": {"type": "number", "minimum": 0},
                        "peak_at": {"type": "number", "minimum": 0,
                                    "maximum": 1},
                        "flash_crowds": {
                            "type": "array",
                            "items": {
                                "type": "object",
                                "additionalProperties": False,
                                "required": ["at"],
                                "properties": {
                                    "at": {"type": "number",
                                           "minimum": 0, "maximum": 1},
                                    "duration": {"type": "number",
                                                 "minimum": 0,
                                                 "maximum": 1},
                                    "rps": {"type": "number",
                                            "minimum": 0},
                                },
                            },
                        },
                    },
                },
            },
        },
        "experiment": {
            "type": "object",
            "additionalProperties": False,
            "properties": {
                "workload": {"type": "string"},
                "seeds": {"type": "array", "minItems": 1,
                          "items": {"type": "integer"}},
                "sweep": {"type": ["object", "array"]},
                "params": {"type": "object"},
            },
        },
    },
}

def _type_name(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, Mapping):
        return "object"
    if isinstance(value, (list, tuple)):
        return "array"
    return type(value).__name__


def _matches_type(value: Any, expected: str) -> bool:
    if expected == "number":
        return (isinstance(value, (int, float))
                and not isinstance(value, bool))
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return _type_name(value) == expected


def validate(instance: Any, schema: Mapping[str, Any] | None = None,
             path: str = "") -> None:
    """Validate ``instance`` against ``schema`` (default the full
    document schema), raising :class:`ScenarioValidationError` with a
    dotted, index-qualified path on the first violation."""
    if schema is None:
        schema = SCHEMA

    expected = schema.get("type")
    if expected is not None:
        allowed = [expected] if isinstance(expected, str) else expected
        if not any(_matches_type(instance, t) for t in allowed):
            raise ScenarioValidationError(
                path, f"expected {' or '.join(allowed)}, "
                      f"got {_type_name(instance)}")

    if "enum" in schema and instance not in schema["enum"]:
        raise ScenarioValidationError(
            path, f"{instance!r} is not one of {schema['enum']}")

    if isinstance(instance, (int, float)) and not isinstance(instance,
                                                             bool):
        if "minimum" in schema and instance < schema["minimum"]:
            raise ScenarioValidationError(
                path, f"{instance} is below the minimum "
                      f"{schema['minimum']}")
        if ("exclusiveMinimum" in schema
                and instance <= schema["exclusiveMinimum"]):
            raise ScenarioValidationError(
                path, f"{instance} must be > "
                      f"{schema['exclusiveMinimum']}")
        if "maximum" in schema and instance > schema["maximum"]:
            raise ScenarioValidationError(
                path, f"{instance} is above the maximum "
                      f"{schema['maximum']}")

    if isinstance(instance, str) and "pattern" in schema:
        if re.fullmatch(schema["pattern"], instance) is None:
            raise ScenarioValidationError(
                path, f"{instance!r} does not match the pattern "
                      f"{schema['pattern']!r}")

    if isinstance(instance, Mapping):
        properties = schema.get("properties", {})
        for key in schema.get("required", ()):
            if key not in instance:
                raise ScenarioValidationError(
                    path, f"missing required key {key!r}")
        if schema.get("additionalProperties") is False:
            unknown = sorted(set(instance) - set(properties))
            if unknown:
                raise ScenarioValidationError(
                    path, f"unknown key(s) {unknown}; valid keys: "
                          f"{sorted(properties)}")
        for key, value in instance.items():
            if key in properties:
                sub = f"{path}.{key}" if path else str(key)
                validate(value, properties[key], sub)

    if isinstance(instance, (list, tuple)):
        if ("minItems" in schema
                and len(instance) < schema["minItems"]):
            raise ScenarioValidationError(
                path, f"expected at least {schema['minItems']} "
                      f"item(s), got {len(instance)}")
        items = schema.get("items")
        if items is not None:
            for i, value in enumerate(instance):
                validate(value, items, f"{path}[{i}]" if path
                         else f"[{i}]")
