"""The scenario document: one validated, versioned source of truth.

A :class:`Scenario` wraps a schema-validated document
(:mod:`repro.scenario.schema`) and knows how to

* cross-validate the parts the schema cannot express -- the
  ``network`` overlay deserialises through the strict
  :meth:`~repro.core.config.NetworkConfig.from_dict`, every entry of
  ``faults`` through :meth:`~repro.faults.plan.FaultSpec.from_dict` --
  re-raising their errors with document-level paths;
* compute a stable content :meth:`digest` (sha256 of the canonical
  JSON form) embedded into run provenance so results are auditable
  back to the exact document that produced them;
* :meth:`compile` itself into an
  :class:`~repro.exp.spec.ExperimentSpec`, which is what makes every
  scenario run reuse the byte-identical
  :class:`~repro.exp.runner.ExperimentRunner` path.

Compilation rules: the ``experiment`` section maps 1:1 onto the spec
(name comes from ``scenario.name``); for the generic ``"scenario"``
workload the document's ``topology`` / ``network`` / ``traffic`` /
``mobility`` / ``faults`` / ``run`` sections are passed through as
fixed params which :mod:`repro.scenario.runtime` interprets.  Any
other workload receives only ``experiment.params`` -- documents
naming one may not carry interpreted sections, so nothing is ever
silently ignored.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, TYPE_CHECKING

from repro.core.config import ConfigError, NetworkConfig
from repro.faults.plan import FaultPlan, FaultSpecError
from repro.scenario.schema import (ScenarioError, ScenarioValidationError,
                                   validate)

if TYPE_CHECKING:  # pragma: no cover
    from repro.exp.spec import ExperimentSpec

#: Workload interpreting the document's world-building sections.
GENERIC_WORKLOAD = "scenario"

#: Sections only the generic workload interprets (``ops`` rides along
#: for the operator runtime; batch runs ignore it).
INTERPRETED_SECTIONS = ("topology", "network", "traffic", "mobility",
                        "faults", "run", "ops")


def canonical_json(data: Any) -> str:
    """The canonical serialised form digests are computed over."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Scenario:
    """An immutable, validated scenario document."""

    name: str
    version: int
    description: str
    tags: tuple[str, ...]
    document: Mapping[str, Any] = field(repr=False)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Validate ``data`` against the schema plus the cross-checks
        and wrap it.  Raises :class:`ScenarioValidationError` /
        :class:`ScenarioError` with path-qualified messages."""
        validate(data)
        meta = data["scenario"]

        network = data.get("network")
        if network is not None:
            try:
                NetworkConfig.from_dict(network, path="network")
            except ConfigError as exc:
                raise ScenarioValidationError(exc.path,
                                              str(exc).split(": ", 1)[-1]
                                              ) from None
        faults = data.get("faults")
        if faults is not None:
            try:
                FaultPlan.from_dict(list(faults), path="faults")
            except FaultSpecError as exc:
                raise ScenarioValidationError(exc.path,
                                              str(exc).split(": ", 1)[-1]
                                              ) from None

        workload = data["experiment"].get("workload", GENERIC_WORKLOAD)
        if workload != GENERIC_WORKLOAD:
            carried = [s for s in INTERPRETED_SECTIONS if s in data]
            if carried:
                raise ScenarioValidationError(
                    carried[0],
                    f"section(s) {carried} are only interpreted by the "
                    f"{GENERIC_WORKLOAD!r} workload, not {workload!r}")

        sweep = data["experiment"].get("sweep", {})
        _check_sweep(sweep)

        return cls(name=meta["name"], version=int(meta["version"]),
                   description=meta["description"],
                   tags=tuple(meta.get("tags", ())),
                   document=copy.deepcopy(dict(data)))

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"not valid JSON: {exc}") from None
        return cls.from_dict(data)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return copy.deepcopy(dict(self.document))

    def digest(self) -> str:
        """sha256 over the canonical JSON form of the document."""
        text = canonical_json(self.to_dict())
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- compilation -------------------------------------------------------

    @property
    def workload(self) -> str:
        return self.document["experiment"].get("workload",
                                               GENERIC_WORKLOAD)

    def compile(self) -> "ExperimentSpec":
        """Compile into the :class:`~repro.exp.spec.ExperimentSpec`
        the runner executes.

        For the generic workload the interpreted sections ride along
        as fixed params (sweep axes may still override the documented
        scalar shortcuts -- see :mod:`repro.scenario.runtime`).
        """
        from repro.exp.spec import ExperimentSpec

        experiment = self.document["experiment"]
        params = dict(experiment.get("params", {}))
        if self.workload == GENERIC_WORKLOAD:
            for section in INTERPRETED_SECTIONS:
                if section in self.document:
                    params[section] = copy.deepcopy(
                        self.document[section])
        return ExperimentSpec(
            name=self.name,
            workload=self.workload,
            seeds=tuple(experiment.get("seeds", (0,))),
            sweep=_freeze_sweep_document(experiment.get("sweep", {})),
            params=params)


def _check_sweep(sweep: Any) -> None:
    pairs = sweep.items() if isinstance(sweep, Mapping) else sweep
    for i, pair in enumerate(pairs):
        if isinstance(sweep, Mapping):
            axis, values = pair
            path = f"experiment.sweep.{axis}"
        else:
            if (not isinstance(pair, (list, tuple))
                    or len(pair) != 2):
                raise ScenarioValidationError(
                    f"experiment.sweep[{i}]",
                    "expected an [axis, values] pair")
            axis, values = pair
            path = f"experiment.sweep[{i}]"
        if not isinstance(axis, str):
            raise ScenarioValidationError(path,
                                          "axis name must be a string")
        if not isinstance(values, (list, tuple)) or not values:
            raise ScenarioValidationError(
                path, "axis values must be a non-empty array")


def _freeze_sweep_document(sweep: Any) -> tuple:
    if isinstance(sweep, Mapping):
        return tuple((axis, tuple(values))
                     for axis, values in sweep.items())
    return tuple((axis, tuple(values)) for axis, values in sweep)
