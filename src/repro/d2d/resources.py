"""Discovery resource allocation on the LTE uplink.

The eNB periodically sets aside uplink resource blocks for LTE-direct
discovery transmissions; the paper notes this consumes under 1% of
uplink resources at 5-10 s discovery periods.  This module makes that
arithmetic explicit so the claim is checkable.
"""

from __future__ import annotations

from dataclasses import dataclass

#: LTE subframe duration (seconds).
SUBFRAME_DURATION = 1e-3


@dataclass(frozen=True)
class DiscoveryResourceConfig:
    """Uplink discovery-pool dimensioning.

    A 10 MHz FDD carrier has 50 uplink RBs per subframe.  Every
    ``period`` seconds the eNB reserves ``pool_subframes`` consecutive
    subframes in which discovery messages are sent, each occupying
    ``rb_per_message`` RBs.
    """

    period: float = 10.0            # discovery period (5-10 s typical)
    pool_subframes: int = 64        # subframes reserved per period
    rb_per_message: int = 2         # PC5 discovery PDU footprint
    ul_rb_per_subframe: int = 50    # 10 MHz carrier

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.pool_subframes <= 0 or self.rb_per_message <= 0:
            raise ValueError("pool dimensions must be positive")

    @property
    def messages_per_period(self) -> int:
        """Discovery transmissions one pool can carry."""
        per_subframe = self.ul_rb_per_subframe // self.rb_per_message
        return per_subframe * self.pool_subframes

    def uplink_overhead_fraction(self) -> float:
        """Fraction of all uplink RBs consumed by the discovery pool."""
        pool_rbs = self.pool_subframes * self.ul_rb_per_subframe
        total_rbs = (self.period / SUBFRAME_DURATION) * self.ul_rb_per_subframe
        return pool_rbs / total_rbs

    def supports_publishers(self, count: int) -> bool:
        """Can ``count`` publishers each broadcast once per period?"""
        return count <= self.messages_per_period
