"""The LTE modem's discovery filter engine.

All service discovery handling happens *inside the modem* (Section 3 of
the paper): the application registers binary code/mask filters, the
modem matches every on-air broadcast against them, and only matches are
forwarded up.  This is what gives LTE-direct its scalability -- the
application processor never sees non-matching broadcasts -- and the
modem's filtered/delivered counters let tests assert exactly that.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.d2d.expressions import ExpressionFilter
from repro.d2d.messages import DiscoveryMessage, Observation


class LteDirectModem:
    """Modem-resident subscription filter table."""

    def __init__(self, device_id: str) -> None:
        self.device_id = device_id
        self._filters: dict[str, tuple[ExpressionFilter,
                                       Callable[[Observation], None]]] = {}
        self.broadcasts_heard = 0
        self.filtered_out = 0
        self.delivered = 0

    @property
    def host_wakeups(self) -> int:
        """Application-processor wakeups: with modem-resident filtering
        only *matches* reach the host (contrast
        :class:`~repro.d2d.beacons.BeaconScanner`)."""
        return self.delivered

    def subscribe(self, name: str, expression_filter: ExpressionFilter,
                  callback: Callable[[Observation], None]) -> None:
        """Register a named filter; the callback fires on each match."""
        self._filters[name] = (expression_filter, callback)

    def unsubscribe(self, name: str) -> None:
        self._filters.pop(name, None)

    def clear(self) -> None:
        self._filters.clear()

    @property
    def subscription_count(self) -> int:
        return len(self._filters)

    def receive_broadcast(self, message: DiscoveryMessage, rx_power: float,
                          snr: float, now: float) -> Optional[Observation]:
        """Process one decodable on-air broadcast.

        Returns the delivered observation if any filter matched, None if
        the message was filtered out in the modem.
        """
        self.broadcasts_heard += 1
        matched = [cb for (flt, cb) in self._filters.values()
                   if flt.matches(message.code)]
        if not matched:
            self.filtered_out += 1
            return None
        observation = Observation(message=message, rx_power=rx_power,
                                  snr=snr, timestamp=now,
                                  subscriber_id=self.device_id)
        self.delivered += 1
        for callback in matched:
            callback(observation)
        return observation
