"""LTE-direct device-to-device proximity service discovery.

Models the Release-12 LTE-direct machinery the paper builds on
(Section 3): publishers periodically broadcast service discovery
messages on uplink resource blocks allocated by the eNB; subscribers'
LTE modems filter the broadcasts against registered binary
code-and-mask expressions, and only matching messages (annotated with
received power and SNR) are handed up to applications.  A log-distance
path-loss radio model produces the rxPower/SNR statistics that drive
the localisation results of Figures 6 and 9.
"""

from repro.d2d.beacons import (IBEACON, LTE_DIRECT, WIFI_AWARE,
                               BeaconScanner, ProximityTechnology)
from repro.d2d.channel import D2DChannel, Publisher, Subscriber
from repro.d2d.expressions import (ExpressionCode, ExpressionFilter,
                                   ExpressionNamespace)
from repro.d2d.messages import DiscoveryMessage, Observation
from repro.d2d.modem import LteDirectModem
from repro.d2d.radio import RadioModel
from repro.d2d.resources import DiscoveryResourceConfig

__all__ = [
    "BeaconScanner",
    "D2DChannel",
    "IBEACON",
    "LTE_DIRECT",
    "ProximityTechnology",
    "WIFI_AWARE",
    "DiscoveryMessage",
    "DiscoveryResourceConfig",
    "ExpressionCode",
    "ExpressionFilter",
    "ExpressionNamespace",
    "LteDirectModem",
    "Observation",
    "Publisher",
    "RadioModel",
    "Subscriber",
]
