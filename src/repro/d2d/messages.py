"""Service discovery messages and receive-side observations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.d2d.expressions import ExpressionCode

#: LTE-direct discovery payloads are small (the PC5 discovery PDU is
#: 232 bits in Release 12); we cap the human-readable payload to keep
#: models honest.
MAX_PAYLOAD_BYTES = 29


@dataclass(frozen=True)
class DiscoveryMessage:
    """A broadcast service discovery message.

    ``service_name``/``payload`` are the application-level view (e.g.
    service "acme-retail", payload "section=laptops"); ``code`` is the
    on-air expression the modem actually filters on.
    """

    publisher_id: str
    service_name: str
    code: ExpressionCode
    payload: str = ""

    def __post_init__(self) -> None:
        if len(self.payload.encode()) > MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload exceeds {MAX_PAYLOAD_BYTES} bytes: {self.payload!r}")


@dataclass(frozen=True)
class Observation:
    """A received discovery message annotated with radio measurements.

    This is what the modem hands to the application on a filter match:
    the message plus rxPower (dBm) and SNR (dB) -- the auxiliary
    information ACACIA's localisation feeds on (Section 5.5).
    """

    message: DiscoveryMessage
    rx_power: float
    snr: float
    timestamp: float
    subscriber_id: str = ""

    @property
    def landmark(self) -> str:
        return self.message.publisher_id
