"""LTE-direct expression codes and modem-side filters.

LTE-direct identifies services with fixed-width binary *expression
codes* managed by the mobile carrier.  A subscriber registers
code-and-mask filters in its modem; an incoming broadcast matches when
``incoming & mask == code & mask``.  We model a 192-bit code split into
a 64-bit carrier-assigned service prefix (e.g. one per retail chain)
and a 128-bit application suffix (e.g. one per store section), so a
subscriber can match a whole service (mask only the prefix) or one
specific offering (mask everything).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Total expression width in bits.
CODE_BITS = 192
#: Carrier-managed service prefix width.
SERVICE_BITS = 64
#: Application-specific suffix width.
SUFFIX_BITS = CODE_BITS - SERVICE_BITS

_CODE_MASK = (1 << CODE_BITS) - 1
_PREFIX_MASK = ((1 << SERVICE_BITS) - 1) << SUFFIX_BITS
_SUFFIX_MASK = (1 << SUFFIX_BITS) - 1


def _digest_bits(text: str, bits: int) -> int:
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest, "big") >> (256 - bits)


@dataclass(frozen=True)
class ExpressionCode:
    """A concrete 192-bit expression code."""

    value: int

    def __post_init__(self) -> None:
        if not (0 <= self.value <= _CODE_MASK):
            raise ValueError(f"expression code out of range: {self.value}")

    @property
    def service_prefix(self) -> int:
        return self.value >> SUFFIX_BITS

    @property
    def suffix(self) -> int:
        return self.value & _SUFFIX_MASK

    def __str__(self) -> str:
        return f"0x{self.value:048x}"


@dataclass(frozen=True)
class ExpressionFilter:
    """A modem filter: ``incoming & mask == code & mask``."""

    code: int
    mask: int

    def matches(self, incoming: ExpressionCode) -> bool:
        return (incoming.value & self.mask) == (self.code & self.mask)


class ExpressionNamespace:
    """Carrier-side registry deriving codes from human-readable names.

    ``code("acme-retail", "laptops")`` always yields the same code, so
    the pair of retail applications (employee publisher, customer
    subscriber) agree on codes without any out-of-band exchange -- the
    carrier manages the namespace, as Section 5.2 describes.
    """

    def code(self, service_name: str, offering: str = "") -> ExpressionCode:
        prefix = _digest_bits(f"service:{service_name}", SERVICE_BITS)
        suffix = _digest_bits(f"offering:{offering}", SUFFIX_BITS) if offering else 0
        return ExpressionCode((prefix << SUFFIX_BITS) | suffix)

    def service_filter(self, service_name: str) -> ExpressionFilter:
        """Match *any* offering of a service (prefix-only mask)."""
        code = self.code(service_name)
        return ExpressionFilter(code=code.value, mask=_PREFIX_MASK)

    def offering_filter(self, service_name: str,
                        offering: str) -> ExpressionFilter:
        """Match one specific offering (full-width mask)."""
        code = self.code(service_name, offering)
        return ExpressionFilter(code=code.value, mask=_CODE_MASK)
