"""Alternative proximity-discovery technologies (paper Section 8).

The paper notes ACACIA can use Bluetooth iBeacon or Wi-Fi Aware instead
of LTE-direct: both are publish/subscribe-style and report a received
power level.  This module models them with the *same subscribe API* as
the LTE modem (:class:`~repro.d2d.modem.LteDirectModem`), so the ACACIA
device manager works unchanged over any of the three.

The salient differences captured here:

* **radio**: BLE beacons transmit at ~0 dBm (vs ~20 dBm for
  LTE-direct), giving far shorter range; Wi-Fi Aware sits in between;
* **filter location**: iBeacon/Wi-Fi Aware matching happens on the
  application processor, not in the modem, so every decodable broadcast
  wakes the host -- the scanner counts those wakeups, quantifying the
  scalability edge the paper attributes to LTE-direct's modem-resident
  filtering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.d2d.expressions import ExpressionFilter
from repro.d2d.messages import DiscoveryMessage, Observation
from repro.d2d.radio import RadioModel


@dataclass(frozen=True)
class ProximityTechnology:
    """A proximity-discovery technology profile."""

    name: str
    radio: RadioModel
    advertise_period: float      # seconds between broadcasts
    modem_filtering: bool        # True -> matching below the app processor


#: LTE-direct: long range, 5-10 s discovery period, modem filtering.
LTE_DIRECT = ProximityTechnology(
    name="lte-direct",
    radio=RadioModel(),          # the defaults are LTE-direct's
    advertise_period=10.0,
    modem_filtering=True)

#: Bluetooth iBeacon: ~0 dBm transmit power, short range, fast
#: advertising, host-side filtering.
IBEACON = ProximityTechnology(
    name="ibeacon",
    radio=RadioModel(tx_power=0.0, pl0=60.0, exponent=2.8,
                     shadowing_sigma=4.0, noise_floor=-90.0,
                     sensitivity=-95.0),
    advertise_period=0.5,
    modem_filtering=False)

#: Wi-Fi Aware: mid-power 2.4 GHz discovery, host-side filtering.
WIFI_AWARE = ProximityTechnology(
    name="wifi-aware",
    radio=RadioModel(tx_power=15.0, pl0=65.0, exponent=3.0,
                     shadowing_sigma=4.0, noise_floor=-92.0,
                     sensitivity=-92.0),
    advertise_period=2.0,
    modem_filtering=False)

TECHNOLOGIES = {t.name: t for t in (LTE_DIRECT, IBEACON, WIFI_AWARE)}


class BeaconScanner:
    """Host-side discovery filter table (the iBeacon/Wi-Fi Aware analog
    of :class:`~repro.d2d.modem.LteDirectModem`).

    Exposes the same ``subscribe``/``unsubscribe``/``receive_broadcast``
    surface so :class:`~repro.core.device_manager.AcaciaDeviceManager`
    can use either interchangeably.  The difference: every decodable
    broadcast is counted as a host wakeup *before* filtering.
    """

    def __init__(self, device_id: str) -> None:
        self.device_id = device_id
        self._filters: dict[str, tuple[ExpressionFilter,
                                       Callable[[Observation], None]]] = {}
        self.broadcasts_heard = 0
        self.host_wakeups = 0
        self.filtered_out = 0
        self.delivered = 0

    def subscribe(self, name: str, expression_filter: ExpressionFilter,
                  callback: Callable[[Observation], None]) -> None:
        self._filters[name] = (expression_filter, callback)

    def unsubscribe(self, name: str) -> None:
        self._filters.pop(name, None)

    def clear(self) -> None:
        self._filters.clear()

    @property
    def subscription_count(self) -> int:
        return len(self._filters)

    def receive_broadcast(self, message: DiscoveryMessage, rx_power: float,
                          snr: float, now: float) -> Optional[Observation]:
        self.broadcasts_heard += 1
        self.host_wakeups += 1          # filtering happens on the host
        matched = [cb for (flt, cb) in self._filters.values()
                   if flt.matches(message.code)]
        if not matched:
            self.filtered_out += 1
            return None
        observation = Observation(message=message, rx_power=rx_power,
                                  snr=snr, timestamp=now,
                                  subscriber_id=self.device_id)
        self.delivered += 1
        for callback in matched:
            callback(observation)
        return observation
