"""D2D radio propagation model.

Log-distance path loss with log-normal shadowing:

    rxPower(d) = tx_power - pl0 - 10 n log10(d) + X_sigma

Parameters are calibrated so the received power spans roughly the 50 dB
dynamic range the paper observes over a store-scale walk (Figure 6(c)),
while the decoder's SNR is clamped to a 25 dB span above the noise
floor -- reproducing the paper's observation that SNR saturates and
correlates poorly with distance, making rxPower the right localisation
input (Section 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Paper-quoted spans: rxPower uses ~50 dB, SNR decoding only ~25 dB.
SNR_SPAN_DB = 25.0


@dataclass
class RadioModel:
    """Log-distance path loss + shadowing for LTE-direct broadcasts."""

    tx_power: float = 20.0          # dBm
    pl0: float = 70.0               # path loss at 1 m (dB)
    exponent: float = 3.0           # indoor with obstructions
    shadowing_sigma: float = 3.0    # dB
    noise_floor: float = -95.0      # dBm
    sensitivity: float = -105.0     # decode threshold (dBm)
    min_distance: float = 0.5       # near-field clamp (m)

    def mean_rx_power(self, distance: float) -> float:
        """Expected rxPower without shadowing (dBm)."""
        d = max(distance, self.min_distance)
        return self.tx_power - self.pl0 - 10 * self.exponent * np.log10(d)

    def rx_power(self, distance: float,
                 rng: np.random.Generator) -> float:
        """One shadowed rxPower sample (dBm)."""
        return self.mean_rx_power(distance) + float(
            rng.normal(0.0, self.shadowing_sigma))

    def snr(self, rx_power: float) -> float:
        """Decoder SNR: clamped to its limited dynamic range."""
        return float(np.clip(rx_power - self.noise_floor, 0.0, SNR_SPAN_DB))

    def decodable(self, rx_power: float) -> bool:
        return rx_power >= self.sensitivity

    def max_range(self) -> float:
        """Distance (m) at which the *mean* rxPower hits sensitivity."""
        margin = self.tx_power - self.pl0 - self.sensitivity
        return float(10 ** (margin / (10 * self.exponent)))

    def distance_from_power(self, rx_power: float) -> float:
        """Invert the mean model (ground-truth inverse, no regression)."""
        exponent_arg = (self.tx_power - self.pl0 - rx_power) / (
            10 * self.exponent)
        return float(10 ** exponent_arg)
