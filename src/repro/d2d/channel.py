"""The D2D broadcast channel: publishers, subscribers, propagation.

Publishers broadcast their discovery message once per discovery period
(a simulator process); for every subscriber the channel draws a shadowed
rxPower from the radio model, discards undecodable receptions, and hands
decodable ones to the subscriber's modem for filter matching.  Device
positions are dynamic (callables), so walk-path experiments (Figures 6
and 9) just move the subscriber between periods.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Union

import numpy as np

from repro.d2d.messages import DiscoveryMessage
from repro.d2d.modem import LteDirectModem
from repro.d2d.radio import RadioModel
from repro.sim.engine import Simulator

Position = tuple[float, float]
PositionSource = Union[Position, Callable[[], Position]]


def _resolve(position: PositionSource) -> Position:
    return position() if callable(position) else position


class Publisher:
    """A landmark device broadcasting one discovery message periodically."""

    def __init__(self, device_id: str, position: PositionSource,
                 message: DiscoveryMessage, period: float = 10.0) -> None:
        self.device_id = device_id
        self._position = position
        self.message = message
        self.period = period
        self.broadcasts_sent = 0
        self.enabled = True

    @property
    def position(self) -> Position:
        return _resolve(self._position)


class Subscriber:
    """A device listening for discovery broadcasts through its modem."""

    def __init__(self, device_id: str, position: PositionSource,
                 modem: Optional[LteDirectModem] = None) -> None:
        self.device_id = device_id
        self._position = position
        self.modem = modem if modem is not None else LteDirectModem(device_id)

    @property
    def position(self) -> Position:
        return _resolve(self._position)

    def move_to(self, position: PositionSource) -> None:
        self._position = position


class D2DChannel:
    """Connects publishers and subscribers through the radio model."""

    def __init__(self, sim: Simulator, radio: Optional[RadioModel] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.sim = sim
        self.radio = radio if radio is not None else RadioModel()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.publishers: dict[str, Publisher] = {}
        self.subscribers: dict[str, Subscriber] = {}
        self.undecodable = 0

    # -- registration -----------------------------------------------------

    def add_publisher(self, publisher: Publisher,
                      start: Optional[float] = None) -> None:
        if publisher.device_id in self.publishers:
            raise ValueError(f"duplicate publisher {publisher.device_id!r}")
        self.publishers[publisher.device_id] = publisher
        # stagger first broadcasts unless an explicit start is given
        offset = (start if start is not None
                  else float(self.rng.uniform(0, publisher.period)))
        self.sim.schedule(offset, self._broadcast, publisher)

    def add_subscriber(self, subscriber: Subscriber) -> None:
        if subscriber.device_id in self.subscribers:
            raise ValueError(f"duplicate subscriber {subscriber.device_id!r}")
        self.subscribers[subscriber.device_id] = subscriber

    def remove_publisher(self, device_id: str) -> None:
        publisher = self.publishers.pop(device_id, None)
        if publisher is not None:
            publisher.enabled = False

    # -- propagation --------------------------------------------------------

    @staticmethod
    def distance(a: Position, b: Position) -> float:
        return math.dist(a, b)

    def _broadcast(self, publisher: Publisher) -> None:
        if not publisher.enabled:
            return
        publisher.broadcasts_sent += 1
        self.deliver_once(publisher)
        self.sim.schedule(publisher.period, self._broadcast, publisher)

    def deliver_once(self, publisher: Publisher) -> None:
        """Propagate one broadcast to every current subscriber."""
        src = publisher.position
        for subscriber in self.subscribers.values():
            d = self.distance(src, subscriber.position)
            rx_power = self.radio.rx_power(d, self.rng)
            if not self.radio.decodable(rx_power):
                self.undecodable += 1
                continue
            snr = self.radio.snr(rx_power)
            subscriber.modem.receive_broadcast(
                publisher.message, rx_power, snr, self.sim.now)
