"""Baseline systems the paper compares ACACIA against.

Two axes of comparison:

* **deployment** (Figures 10(b), 13): CLOUD (conventional EPC, server
  behind the distant centralised gateways), MEC (edge-located server
  but the conventional shared, non-split data path) and ACACIA
  (dedicated bearer onto local split GW-Us);
* **search scheme** (Figures 11, 12): Naive (whole floor), rxPower
  (sections of the two loudest landmarks) and ACACIA (sub-sections
  around the trilaterated position) -- implemented in
  :mod:`repro.core.optimizer` and selected by name here.
"""

from repro.baselines.deployments import (DEPLOYMENT_KINDS, Deployment,
                                         EdgeFabric, build_deployment,
                                         build_edge_fabric, build_topology,
                                         fabric_topology)

#: Search-space scheme names accepted by ARBackend.process_frame.
SEARCH_SCHEMES = ("naive", "rxpower", "acacia")

__all__ = [
    "DEPLOYMENT_KINDS",
    "Deployment",
    "EdgeFabric",
    "SEARCH_SCHEMES",
    "build_deployment",
    "build_edge_fabric",
    "build_topology",
    "fabric_topology",
]
