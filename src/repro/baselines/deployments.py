"""End-to-end deployment builders: CLOUD, MEC and ACACIA.

Each builder assembles a full simulated network plus an AR server and
one customer UE, differing exactly the way the paper's comparison
points differ:

* ``cloud`` -- conventional EPC: AR server across the internet behind
  the centralised gateways (~70 ms RTT), whole-database matching;
* ``mec`` -- the AR server is deployed at the edge (the conventional
  gateways are co-located with the eNodeB, emulated with short
  controlled delays as in Section 7.2), but traffic still shares the
  non-split data path with everyone else and matching is unoptimised;
* ``acacia`` -- the full system: MEC site with local split GW-Us, MRS +
  device manager + LTE-direct discovery, dedicated bearer, and
  location-pruned matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.ar_backend import ARBackend, ARServerNode
from repro.apps.ar_frontend import ARFrontend, ARSession
from repro.apps.retail import (RETAIL_SERVICE, RetailCustomerApp,
                               RetailStore, landmark_map_for)
from repro.apps.scenario import StoreScenario
from repro.core.config import (MatcherConfig, NetworkConfig,
                               SignallingConfig, SimConfig)
from repro.core.device_manager import AcaciaDeviceManager
from repro.core.localization_manager import LocalizationManager
from repro.core.mrs import MecRegistrationServer
from repro.core.network import MobileNetwork
from repro.core.service import CIService
from repro.d2d.channel import D2DChannel
from repro.d2d.radio import RadioModel
from repro.localization.pathloss import calibrate_from_radio
from repro.sim.context import SimContext
from repro.vision.camera import R720x480, Resolution
from repro.vision.costmodel import DEVICES, DeviceProfile
from repro.vision.database import ObjectDatabase

DEPLOYMENT_KINDS = ("cloud", "mec", "acacia")

AR_SERVER_NAME = "ar-server"
AR_SERVICE_ID = "ar-retail"

CI_ECHO_SERVICE_ID = "ci-echo"


@dataclass
class Deployment:
    """A ready-to-run end-to-end configuration."""

    kind: str
    network: MobileNetwork
    scenario: StoreScenario
    db: ObjectDatabase
    backend: ARBackend
    server_node: ARServerNode
    ue: object                      # UEDevice
    scheme: str
    channel: Optional[D2DChannel] = None
    store: Optional[RetailStore] = None
    mrs: Optional[MecRegistrationServer] = None
    device_manager: Optional[AcaciaDeviceManager] = None
    customer: Optional[RetailCustomerApp] = None
    localization: Optional[LocalizationManager] = None

    def new_session(self, frames, resolution: Resolution = R720x480,
                    max_frames: Optional[int] = None,
                    scene_complexity: float = 1.0) -> ARSession:
        frontend = ARFrontend(resolution,
                              scene_complexity=scene_complexity)
        return ARSession(self.network.sim, self.ue,
                         self.network.servers[AR_SERVER_NAME].ip,
                         frontend, frames, max_frames=max_frames)


def _mec_colocated_config(
        seed: int,
        signalling: Optional[SignallingConfig] = None,
        data_plane: str = "packet") -> NetworkConfig:
    """Conventional (shared, non-split) gateways moved next to the eNB."""
    config = NetworkConfig(
        backhaul_delay=0.0006, core_delay=0.0004, internet_delay=0.0002,
        seed=seed, sim=SimConfig(data_plane=data_plane))
    if signalling is not None:
        config.signalling = signalling
    return config


def _network_config(
        seed: int,
        signalling: Optional[SignallingConfig] = None,
        data_plane: str = "packet") -> NetworkConfig:
    config = NetworkConfig(seed=seed,
                           sim=SimConfig(data_plane=data_plane))
    if signalling is not None:
        config.signalling = signalling
    return config


def build_deployment(kind: str, db: ObjectDatabase,
                     scenario: StoreScenario, seed: int = 0,
                     server_device: DeviceProfile = DEVICES["i7-8core"],
                     user_position: Optional[tuple[float, float]] = None,
                     matcher_config: Optional[MatcherConfig] = None,
                     signalling_config: Optional[SignallingConfig] = None,
                     data_plane: str = "packet",
                     ) -> Deployment:
    """Build one of the three comparison deployments.

    ``matcher_config`` selects the server's matching engine (default:
    the batched engine; decision-equivalent to the reference);
    ``signalling_config`` parameterises the control-plane signalling
    fabric (default transports when omitted); ``data_plane`` selects
    the per-packet or fluid-background data plane
    (:mod:`repro.sim.fluid`)."""
    if kind not in DEPLOYMENT_KINDS:
        raise ValueError(f"unknown deployment kind {kind!r}; "
                         f"expected one of {DEPLOYMENT_KINDS}")

    ctx = SimContext(seed)
    radio = RadioModel()
    regression = calibrate_from_radio(
        radio, ctx.rng("localization.calibration"))
    landmark_map = landmark_map_for(scenario, regression)
    localization = LocalizationManager(landmark_map)
    backend = ARBackend(db, scenario, localization, device=server_device,
                        matcher_config=matcher_config)

    if kind == "cloud":
        network = MobileNetwork(
            _network_config(seed, signalling_config, data_plane), ctx=ctx)
        server_node = ARServerNode(network.sim, AR_SERVER_NAME, backend,
                                   scheme="naive")
        network.add_server(AR_SERVER_NAME, site_name="central",
                           node=server_node)
        ue = network.add_ue("customer-ue")
        network.route_via_default_bearer(ue, AR_SERVER_NAME)
        return Deployment(kind=kind, network=network, scenario=scenario,
                          db=db, backend=backend, server_node=server_node,
                          ue=ue, scheme="naive", localization=localization)

    if kind == "mec":
        network = MobileNetwork(
            _mec_colocated_config(seed, signalling_config, data_plane),
            ctx=ctx)
        server_node = ARServerNode(network.sim, AR_SERVER_NAME, backend,
                                   scheme="naive")
        network.add_server(AR_SERVER_NAME, site_name="central",
                           node=server_node, delay=0.0002)
        ue = network.add_ue("customer-ue")
        network.route_via_default_bearer(ue, AR_SERVER_NAME)
        return Deployment(kind=kind, network=network, scenario=scenario,
                          db=db, backend=backend, server_node=server_node,
                          ue=ue, scheme="naive", localization=localization)

    # -- the full ACACIA system ------------------------------------------
    network = MobileNetwork(
        _network_config(seed, signalling_config, data_plane), ctx=ctx)
    network.add_mec_site("mec")
    server_node = ARServerNode(network.sim, AR_SERVER_NAME, backend,
                               scheme="acacia")
    network.add_server(AR_SERVER_NAME, site_name="mec", node=server_node)
    ue = network.add_ue("customer-ue")

    mrs = MecRegistrationServer(network)
    mrs.register_service(CIService(service_id=AR_SERVICE_ID,
                                   lte_direct_service=RETAIL_SERVICE))
    mrs.deploy_instance(AR_SERVICE_ID, AR_SERVER_NAME, "mec")

    channel = D2DChannel(network.sim, radio, rng=ctx.rng("d2d.channel"))
    store = RetailStore(scenario, channel)
    store.open()

    device_manager = AcaciaDeviceManager(ue, mrs)
    position = user_position if user_position is not None \
        else scenario.checkpoints[0].position if scenario.checkpoints \
        else (10.0, 10.0)
    customer = RetailCustomerApp(
        app_id=ue.name, device_manager=device_manager, channel=channel,
        position=position, service_id=AR_SERVICE_ID,
        localization=localization)
    return Deployment(kind=kind, network=network, scenario=scenario,
                      db=db, backend=backend, server_node=server_node,
                      ue=ue, scheme="acacia", channel=channel, store=store,
                      mrs=mrs, device_manager=device_manager,
                      customer=customer, localization=localization)


# -- multi-site edge fabric ------------------------------------------------


@dataclass
class EdgeFabric:
    """A multi-site continuity deployment, ready for mobile UEs.

    ``enb_positions`` lays the cells on a line (``cell_spacing`` metres
    apart) for a :class:`~repro.apps.mobility.MobilityManager`;
    ``site_of_enb`` / ``server_of_site`` record the home-site mapping
    and each site's CI echo server.
    """

    network: MobileNetwork
    mrs: MecRegistrationServer
    service_id: str
    enb_positions: dict[str, tuple[float, float]]
    site_of_enb: dict[str, str]
    server_of_site: dict[str, str]

    @property
    def site_names(self) -> list[str]:
        return list(self.server_of_site)


def fabric_topology(n_sites: int = 3, enbs_per_site: int = 2,
                    cell_spacing: float = 100.0) -> dict:
    """The scenario-document ``topology`` section for a linear fabric.

    This is the canonical serialised form :func:`build_topology`
    interprets; :func:`build_edge_fabric` goes through it, so the
    hand-coded and document-driven paths construct identical worlds.
    """
    return {"sites": n_sites, "enbs_per_site": enbs_per_site,
            "cell_spacing": cell_spacing}


def build_topology(topology, *, seed: int = 0,
                   config: Optional[NetworkConfig] = None,
                   continuity=None,
                   signalling_config: Optional[SignallingConfig] = None,
                   data_plane: str = "packet") -> EdgeFabric:
    """Interpret a scenario-document ``topology`` section into a fabric.

    ``topology`` is a plain mapping (``sites``, ``enbs_per_site``,
    ``cell_spacing``; unknown keys rejected): ``sites`` consecutive
    edge sites on a line, ``enbs_per_site`` cells homed on each, one
    CI echo server per site registered with the MRS, and the WAN mesh
    between sites.  A single-site topology is a plain MEC deployment:
    no site boundaries, so relocation never triggers.

    ``config`` supplies a fully-formed :class:`NetworkConfig` (the
    scenario layer builds one from the document's ``network``
    section); the remaining keyword arguments cover the legacy
    hand-coded path and are ignored when ``config`` is given.

    This is the only sanctioned raw-dict deployment entry point, and
    only the scenario layer (plus this module) may call it -- see the
    layering gate in ``tests/test_layering.py``.
    """
    section = dict(topology)
    n_sites = section.pop("sites", 3)
    enbs_per_site = section.pop("enbs_per_site", 2)
    cell_spacing = section.pop("cell_spacing", 100.0)
    if section:
        raise ValueError(f"unknown topology key(s) {sorted(section)}; "
                         "valid keys: ['cell_spacing', 'enbs_per_site', "
                         "'sites']")
    n_sites, enbs_per_site = int(n_sites), int(enbs_per_site)
    cell_spacing = float(cell_spacing)
    if n_sites < 1:
        raise ValueError("a topology needs at least 1 site")
    if enbs_per_site < 1:
        raise ValueError("each site needs at least one cell")
    if cell_spacing <= 0:
        raise ValueError("cell_spacing must be positive")
    if config is None:
        config = _network_config(seed, signalling_config, data_plane)
        if continuity is not None:
            config.continuity = continuity
    network = MobileNetwork(config)

    enb_positions: dict[str, tuple[float, float]] = {
        "enb0": (0.0, 0.0)}     # the constructor's default cell
    for i in range(1, n_sites * enbs_per_site):
        network.add_enb(f"enb{i}")
        enb_positions[f"enb{i}"] = (cell_spacing * i, 0.0)

    site_of_enb: dict[str, str] = {}
    server_of_site: dict[str, str] = {}
    mrs = MecRegistrationServer(network)
    mrs.register_service(CIService(
        service_id=CI_ECHO_SERVICE_ID,
        lte_direct_service="ci-echo-discovery"))
    for s in range(n_sites):
        site_name = f"edge{s}"
        home = tuple(f"enb{s * enbs_per_site + k}"
                     for k in range(enbs_per_site))
        network.add_edge_site(site_name, home_enbs=home)
        for enb_name in home:
            site_of_enb[enb_name] = site_name
        server_name = f"ci-{site_name}"
        network.add_server(server_name, site_name=site_name, echo=True)
        server_of_site[site_name] = server_name
        mrs.deploy_instance(CI_ECHO_SERVICE_ID, server_name, site_name,
                            serves_enbs=set(home))

    return EdgeFabric(network=network, mrs=mrs,
                      service_id=CI_ECHO_SERVICE_ID,
                      enb_positions=enb_positions,
                      site_of_enb=site_of_enb,
                      server_of_site=server_of_site)


class ShardSiteApp:
    """One edge site of a sharded fabric, as a self-contained shard.

    The per-shard unit :mod:`repro.sim.shard` partitions a multi-site
    deployment into: a complete single-site MEC world (own
    :class:`~repro.core.network.MobileNetwork`, eNodeB, gateways, CI
    echo server and UE population) whose *only* coupling to the other
    sites is the inter-site WAN -- modelled by the shard conduits, so
    the WAN propagation delay is exactly the conservative lookahead.

    The class itself is the shard builder
    (``ShardSpec(name, ShardSiteApp, kwargs)``): constructing it only
    *arms* events -- the attach storm, the traffic start and the
    context-sync ticker -- and never runs the simulator; time advances
    exclusively inside the coordinator's windows, identically in every
    backend.

    Cross-site traffic is a periodic context-sync exchange: every
    ``sync_interval`` each site sends a small summary envelope to every
    peer, and a received summary triggers one extra CI ping from a
    local UE -- so remote events genuinely perturb local packet
    timelines and a mis-merged envelope order would change the digests
    the differential tests compare.

    Constructor keyword arguments (all JSON-able, so specs cross
    process boundaries): ``seed``, ``n_ues``, ``warmup`` (attach-storm
    settling time before traffic starts), ``duration`` (traffic
    window), ``ping_interval``/``ping_size``, ``sync_interval``/
    ``sync_bytes``, ``data_plane`` and ``bg_mbps`` (background load,
    per-packet or fluid by data plane).
    """

    def __init__(self, port, *, seed: int = 0, n_ues: int = 4,
                 warmup: float = 1.0, duration: float = 8.0,
                 ping_interval: float = 0.1, ping_size: int = 256,
                 sync_interval: float = 0.5, sync_bytes: int = 2000,
                 data_plane: str = "packet", bg_mbps: float = 0.0) -> None:
        from repro.core.network import MobileNetwork, Pinger
        from repro.sim.context import derive_seed

        self.port = port
        self.warmup = warmup
        self.duration = duration
        self.ping_interval = ping_interval
        self.ping_size = ping_size
        self.sync_interval = sync_interval
        self.sync_bytes = sync_bytes
        self._pinger_cls = Pinger
        self.network = MobileNetwork(NetworkConfig(
            seed=derive_seed("shard-site", port.name, seed),
            sim=SimConfig(data_plane=data_plane)))
        self.sim = self.network.sim
        self.network.add_mec_site("mec")
        self.network.add_server("ci", site_name="mec", echo=True)
        if bg_mbps > 0:
            self.network.add_background_load(rate=bg_mbps * 1e6).start()
        self._attach_procs = [self.network.add_ue_async()
                              for _ in range(n_ues)]
        self.ues: list = []
        self.pingers: list = []
        self.sync_sent = 0
        self.sync_received = 0
        self.sync_bytes_received = 0
        #: bounded cross-shard delivery trace, part of the compared
        #: result: [sim time, sender site, tick number]
        self.sync_trace: list[list] = []
        self.sim.schedule(warmup, self._start_traffic)
        self.sim.schedule(warmup, self._sync_tick, 0, priority=1)

    def _start_traffic(self) -> None:
        self.ues = [proc.value for proc in self._attach_procs
                    if proc.finished and proc.error is None
                    and proc.value.attached]
        count = max(1, int(round(self.duration / self.ping_interval)))
        for ue in self.ues:
            pinger = self._pinger_cls(self.network, ue, "ci",
                                      size=self.ping_size,
                                      interval=self.ping_interval)
            pinger.run(count=count, start=self.sim.now)
            self.pingers.append(pinger)

    def _sync_tick(self, k: int) -> None:
        if self.sim.now >= self.warmup + self.duration:
            return
        for peer in self.port.peers:
            self.port.send(peer, {"k": k, "bytes": self.sync_bytes})
            self.sync_sent += 1
        self.sim.schedule(self.sync_interval, self._sync_tick, k + 1,
                          priority=1)

    def deliver(self, src: str, payload: dict) -> None:
        """A peer site's context-sync summary arrived over the WAN."""
        self.sync_received += 1
        self.sync_bytes_received += payload["bytes"]
        if len(self.sync_trace) < 256:
            self.sync_trace.append([round(self.sim.now, 9), src,
                                    payload["k"]])
        # couple remote progress into the local packet timeline: one
        # extra CI ping, from a UE chosen by the sender's tick
        if self.pingers:
            self.pingers[payload["k"] % len(self.pingers)].run(count=1)

    def collect(self) -> dict:
        for pinger in self.pingers:
            pinger.close()
        rtts = sorted(r for p in self.pingers for r in p.rtts)
        return {
            "attached": len(self.ues),
            "pings_answered": len(rtts),
            "pings_lost": sum(p.lost for p in self.pingers),
            "rtt_sum_ms": round(sum(rtts) * 1e3, 6),
            "rtt_max_ms": round(rtts[-1] * 1e3, 6) if rtts else None,
            "sync_sent": self.sync_sent,
            "sync_received": self.sync_received,
            "sync_bytes_received": self.sync_bytes_received,
            "sync_trace": self.sync_trace,
            "events_run": self.sim.events_run,
            "now": round(self.sim.now, 9),
        }


def build_edge_fabric(n_sites: int = 3, enbs_per_site: int = 2,
                      seed: int = 0,
                      continuity=None,
                      signalling_config: Optional[SignallingConfig] = None,
                      data_plane: str = "packet",
                      cell_spacing: float = 100.0) -> EdgeFabric:
    """Build an N-site edge fabric with one CI echo server per site.

    The cells sit on a line, ``enbs_per_site`` consecutive cells homed
    on each edge site, so a UE walking the line sweeps every site and
    crosses ``n_sites - 1`` site boundaries.  Each site runs one
    instance of a CI echo service registered with the MRS; handing
    over across a boundary triggers application-context relocation
    under ``continuity`` (a
    :class:`~repro.core.config.ContinuityConfig`; the network default
    when omitted).

    Since the scenario layer landed this is a thin wrapper: the
    parameters become a :func:`fabric_topology` section which
    :func:`build_topology` interprets, so hand-coded experiments and
    scenario documents share one construction path.
    """
    if n_sites < 2:
        raise ValueError("an edge fabric needs at least 2 sites")
    return build_topology(
        fabric_topology(n_sites, enbs_per_site, cell_spacing),
        seed=seed, continuity=continuity,
        signalling_config=signalling_config, data_plane=data_plane)
