"""The SDN controller (Ryu analog).

GW-Cs program the GW user planes through this controller.  Every
flow-table change is recorded as an OpenFlow control message in the
control ledger so the overhead analysis (Section 4) sees SDN signalling
alongside 3GPP signalling.
"""

from __future__ import annotations

from typing import Optional

from repro.epc.messages import ControlMessage, MessageType
from repro.epc.overhead import ControlLedger
from repro.sdn.openflow import FlowRule
from repro.sdn.switch import FlowSwitch

#: Fallback OpenFlow message sizes for switches outside the calibrated
#: release/re-establish groups.
_FLOW_MOD_ADD_SIZE = 368
_FLOW_MOD_DELETE_SIZE = 344


class SdnController:
    """Centralised OpenFlow controller managing a set of GW-U switches."""

    def __init__(self, name: str = "ryu",
                 ledger: Optional[ControlLedger] = None) -> None:
        self.name = name
        self.ledger = ledger if ledger is not None else ControlLedger()
        self.switches: dict[str, FlowSwitch] = {}
        self.flow_mods_sent = 0

    def register(self, switch: FlowSwitch) -> None:
        self.switches[switch.name] = switch

    def _record(self, kind: str, switch: FlowSwitch, size: int,
                detail: str) -> None:
        mtype = MessageType("OpenFlow", f"FlowMod({kind},{switch.name})", size)
        self.ledger.record(ControlMessage(
            mtype, sender=self.name, receiver=switch.name,
            fields={"detail": detail}))
        self.flow_mods_sent += 1

    def install_rule(self, switch_name: str, rule: FlowRule,
                     size: int = _FLOW_MOD_ADD_SIZE) -> None:
        """Add a flow rule (one OpenFlow flow-mod message)."""
        switch = self._switch(switch_name)
        switch.install(rule)
        self._record("add", switch, size, rule.match.describe())

    def remove_rules(self, switch_name: str, cookie: str,
                     size: int = _FLOW_MOD_DELETE_SIZE) -> int:
        """Delete all rules carrying a cookie (one flow-mod message)."""
        switch = self._switch(switch_name)
        removed = switch.remove(cookie)
        self._record("delete", switch, size, f"cookie={cookie}")
        return len(removed)

    def _switch(self, name: str) -> FlowSwitch:
        try:
            return self.switches[name]
        except KeyError:
            raise KeyError(
                f"switch {name!r} is not registered with {self.name}"
            ) from None
