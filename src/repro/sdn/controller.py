"""The SDN controller (Ryu analog).

GW-Cs program the GW user planes through this controller.  Every
flow-table change is recorded as an OpenFlow control message in the
control ledger so the overhead analysis (Section 4) sees SDN signalling
alongside 3GPP signalling.

The controller can run in two modes:

* **standalone** (no fabric bound): flow-mods apply immediately and are
  recorded synchronously -- handy for unit tests and direct scripting;
* **fabric-bound** (see :meth:`bind_fabric`): each flow-mod is a packet
  on the controller's per-switch OpenFlow channel; the rule is applied
  to the switch *at delivery* and the returned
  :class:`~repro.sim.engine.Future` resolves to the recorded
  :class:`ControlMessage`.  This is how flow-rule installation time
  becomes part of measured procedure latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Union

from repro.epc.messages import ControlMessage, MessageType
from repro.epc.overhead import ControlLedger
from repro.sdn.openflow import FlowRule
from repro.sdn.switch import FlowSwitch

if TYPE_CHECKING:  # pragma: no cover
    from repro.epc.signalling import SignallingFabric
    from repro.sim.engine import Future

#: Fallback OpenFlow message sizes for switches outside the calibrated
#: release/re-establish groups.
_FLOW_MOD_ADD_SIZE = 368
_FLOW_MOD_DELETE_SIZE = 344


class SdnController:
    """Centralised OpenFlow controller managing a set of GW-U switches."""

    def __init__(self, name: str = "ryu",
                 ledger: Optional[ControlLedger] = None) -> None:
        self.name = name
        self.ledger = ledger if ledger is not None else ControlLedger()
        self.switches: dict[str, FlowSwitch] = {}
        self.flow_mods_sent = 0
        self._fabric: Optional["SignallingFabric"] = None
        #: retransmission policy for fabric-bound flow-mods (set by the
        #: control plane; None = unguarded sends).  Retried flow-mods
        #: are idempotent: the fabric suppresses duplicate deliveries,
        #: so a rule is applied to the switch exactly once.
        self.retry_policy = None

    def bind_fabric(self, fabric: "SignallingFabric") -> None:
        """Route flow-mods over the signalling fabric from now on.

        Opens one OpenFlow channel per registered switch (and per
        switch registered later), so controller-to-switch latency and
        queueing are part of every procedure that programs the data
        plane.
        """
        if fabric.ledger is not self.ledger:
            raise ValueError("controller and fabric must share one ledger")
        self._fabric = fabric
        for switch in self.switches.values():
            self._open_channel(switch)

    def register(self, switch: FlowSwitch) -> None:
        self.switches[switch.name] = switch
        if self._fabric is not None:
            self._open_channel(switch)

    def _open_channel(self, switch: FlowSwitch) -> None:
        self._fabric.open_channel(f"of.{switch.name}", "OpenFlow",
                                  [self.name], [switch.name])

    def _record(self, kind: str, switch: FlowSwitch, size: int,
                detail: str) -> None:
        mtype = MessageType("OpenFlow", f"FlowMod({kind},{switch.name})", size)
        self.ledger.record(ControlMessage(
            mtype, sender=self.name, receiver=switch.name,
            fields={"detail": detail}))
        self.flow_mods_sent += 1

    def install_rule(self, switch_name: str, rule: FlowRule,
                     size: int = _FLOW_MOD_ADD_SIZE,
                     telemetry: Any = None) -> Union[None, "Future"]:
        """Add a flow rule (one OpenFlow flow-mod message).

        Fabric-bound, returns a future resolving to the recorded
        message once the flow-mod reaches the switch (which is when the
        rule takes effect); standalone, applies immediately and returns
        ``None``.  Over a lossy channel the flow-mod is retransmitted
        per :attr:`retry_policy`; ``telemetry`` accumulates the retry
        counts (typically the owning procedure's result).
        """
        switch = self._switch(switch_name)
        if self._fabric is None:
            switch.install(rule)
            self._record("add", switch, size, rule.match.describe())
            return None
        mtype = MessageType("OpenFlow", f"FlowMod(add,{switch.name})", size)

        def apply(message: ControlMessage) -> None:
            switch.install(rule)
            self.flow_mods_sent += 1

        return self._fabric.send_reliable(mtype, self.name, switch.name,
                                          policy=self.retry_policy,
                                          on_deliver=apply,
                                          telemetry=telemetry,
                                          detail=rule.match.describe())

    def remove_rules(self, switch_name: str, cookie: str,
                     size: int = _FLOW_MOD_DELETE_SIZE,
                     telemetry: Any = None) -> Union[int, "Future"]:
        """Delete all rules carrying a cookie (one flow-mod message).

        Standalone, returns the number of rules removed; fabric-bound,
        returns a future resolving to the recorded message (the switch
        drops the rules at delivery).  Retransmitted like
        :meth:`install_rule`.
        """
        switch = self._switch(switch_name)
        if self._fabric is None:
            removed = switch.remove(cookie)
            self._record("delete", switch, size, f"cookie={cookie}")
            return len(removed)
        mtype = MessageType("OpenFlow", f"FlowMod(delete,{switch.name})",
                            size)

        def apply(message: ControlMessage) -> None:
            switch.remove(cookie)
            self.flow_mods_sent += 1

        return self._fabric.send_reliable(mtype, self.name, switch.name,
                                          policy=self.retry_policy,
                                          on_deliver=apply,
                                          telemetry=telemetry,
                                          detail=f"cookie={cookie}")

    def apply_batch(self, ops: list[tuple], telemetry: Any = None) -> list:
        """Issue several flow-mods concurrently (one transaction).

        ``ops`` is a list of ``("add", switch_name, FlowRule)`` /
        ``("delete", switch_name, cookie)`` tuples.  Fabric-bound, all
        flow-mods are sent at once -- they contend on their per-switch
        OpenFlow channels in parallel, which is what makes a cross-site
        re-steer's programming window as short as the slowest channel
        rather than the sum of all of them -- and the returned futures
        (in ``ops`` order) resolve as each one reaches its switch.
        Standalone, every op applies immediately and ``[]`` is
        returned.  Each op is idempotent under PR-4 retries: duplicate
        deliveries are suppressed by the fabric, installs replace
        identical rules, and deletes of absent cookies are no-ops.
        """
        futures = []
        for op in ops:
            kind, switch_name, payload = op
            if kind == "add":
                outcome = self.install_rule(switch_name, payload,
                                            telemetry=telemetry)
            elif kind == "delete":
                outcome = self.remove_rules(switch_name, payload,
                                            telemetry=telemetry)
            else:
                raise ValueError(f"unknown flow-mod batch op {kind!r}")
            if self._fabric is not None:
                futures.append(outcome)
        return futures

    def _switch(self, name: str) -> FlowSwitch:
        try:
            return self.switches[name]
        except KeyError:
            raise KeyError(
                f"switch {name!r} is not registered with {self.name}"
            ) from None
