"""Data-plane cost profiles.

Figure 8 compares three gateway data planes driving an iperf TCP test:

* **OpenEPC** -- the monolithic user-space gateway; every packet crosses
  the kernel/user boundary and a user-space GTP stack;
* **ACACIA** -- OVS with the GTP fast path: first packet of a flow takes
  the user-space slow path, subsequent packets are handled by a cached
  kernel-resident exact-match entry;
* **IDEAL** -- raw forwarding with no gateway processing (the link's
  maximum achievable throughput).

A profile assigns a per-packet CPU cost to the slow and fast paths; the
switch serialises packets through its CPU, so throughput saturates at
``packet_bits / cost`` when CPU-bound or at line rate when link-bound.
Costs are calibrated so the throughput ordering and rough magnitudes of
Figure 8 are reproduced on a 1 Gbps test link.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DataPlaneProfile:
    """Per-packet CPU costs (seconds) for a gateway data plane."""

    name: str
    slow_path_cost: float   # user-space lookup + GTP processing
    fast_path_cost: float   # cached kernel path
    has_fast_path: bool     # False -> every packet pays the slow path

    def cost_for(self, cached: bool) -> float:
        if self.has_fast_path and cached:
            return self.fast_path_cost
        return self.slow_path_cost


#: OpenEPC release 5: monolithic user-space GW, no kernel fast path.
#: ~125 us/packet -> a ~90 Mbps forwarding ceiling with 1400 B frames,
#: which is where Figures 3(g)/10(b) place the shared-gateway
#: saturation knee.
OPENEPC_USERSPACE_PROFILE = DataPlaneProfile(
    name="openepc-userspace", slow_path_cost=125e-6,
    fast_path_cost=125e-6, has_fast_path=False)

#: ACACIA's OVS with kernel-resident GTP fast path: first packet of each
#: flow ~80 us (user-space OpenFlow table lookup), then ~4 us cached.
ACACIA_OVS_PROFILE = DataPlaneProfile(
    name="acacia-ovs", slow_path_cost=80e-6,
    fast_path_cost=4e-6, has_fast_path=True)

#: No gateway processing at all: the link is the only bottleneck.
IDEAL_PROFILE = DataPlaneProfile(
    name="ideal", slow_path_cost=0.0, fast_path_cost=0.0,
    has_fast_path=True)
