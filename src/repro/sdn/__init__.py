"""SDN substrate: the Open vSwitch / Ryu analog.

ACACIA realises the split gateway user planes (SGW-U/PGW-U) as OpenFlow
switches extended with GTP encapsulation/decapsulation actions, managed
by a Ryu-style controller that installs GTP flow rules from the GW-C
state.  The switch model includes the user-space slow path / kernel
fast path distinction whose cost difference Figure 8 measures.
"""

from repro.sdn.controller import SdnController
from repro.sdn.dataplane import (ACACIA_OVS_PROFILE, IDEAL_PROFILE,
                                 OPENEPC_USERSPACE_PROFILE, DataPlaneProfile)
from repro.sdn.events import FlowRuleInstalled, FlowRuleRemoved, TableMiss
from repro.sdn.openflow import (FlowMatch, FlowRule, GtpDecap, GtpEncap,
                                Output)
from repro.sdn.switch import FlowSwitch

__all__ = [
    "ACACIA_OVS_PROFILE",
    "DataPlaneProfile",
    "FlowMatch",
    "FlowRule",
    "FlowRuleInstalled",
    "FlowRuleRemoved",
    "FlowSwitch",
    "GtpDecap",
    "GtpEncap",
    "IDEAL_PROFILE",
    "OPENEPC_USERSPACE_PROFILE",
    "Output",
    "SdnController",
    "TableMiss",
]
