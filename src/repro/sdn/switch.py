"""Flow-table switch: the Open vSwitch analog realising GW user planes.

The switch keeps a priority-ordered OpenFlow table (the *slow path*) and
an exact-match cache (the *kernel fast path*).  The first packet of a
flow is matched against the table, pays the slow-path CPU cost and
installs a cache entry; later packets hit the cache at the fast-path
cost.  The CPU is a serial resource: costs accumulate on a busy-until
clock, which is what caps a user-space gateway's throughput in Figure 8.

Packets with no matching rule are counted as table misses, announced as
a :class:`~repro.sdn.events.TableMiss` on the hook bus (the paging
manager's punt path) and dropped.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.epc.gtp import gtp_teid
from repro.sdn.dataplane import IDEAL_PROFILE, DataPlaneProfile
from repro.sdn.events import FlowRuleInstalled, FlowRuleRemoved, TableMiss
from repro.sdn.openflow import FlowRule, Output
from repro.sim.node import Node
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.link import Link


def _cache_key(packet: Packet) -> tuple:
    """Exact-match key: outer TEID (if tunnelled) + inner five-tuple."""
    return (gtp_teid(packet),) + packet.five_tuple


class FlowSwitch(Node):
    """An SDN switch with GTP-capable actions and a fast-path cache."""

    def __init__(self, sim: "Simulator", name: str,
                 profile: DataPlaneProfile = IDEAL_PROFILE,
                 ip: Optional[str] = None) -> None:
        super().__init__(sim, name, ip)
        self.profile = profile
        self.table: list[FlowRule] = []
        self._cache: dict[tuple, FlowRule] = {}
        self._cpu_free_at = 0.0
        self._fluid_cpu = None
        self.table_misses = 0
        self.fast_path_hits = 0
        self.slow_path_hits = 0

    def set_fluid_cpu(self, queue) -> None:
        """Attach the fluid server modelling aggregated background load
        on this switch's CPU (a :class:`repro.sim.fluid.FluidQueue`
        with ``capacity=1.0`` in CPU-seconds per second).  Per-packet
        arrivals then wait behind the fluid CPU backlog in addition to
        the per-packet busy-until clock."""
        self._fluid_cpu = queue

    # -- table management (driven by the controller) ---------------------

    def install(self, rule: FlowRule) -> None:
        """Add a rule; idempotent for an identical (cookie, priority,
        match) triple -- re-installing replaces the previous rule in
        place instead of duplicating it, so a retried FlowMod (or a
        re-steer replayed over a lossy channel) leaves exactly one
        rule in the table."""
        key = (rule.cookie, rule.priority, rule.match.describe())
        self.table = [r for r in self.table
                      if (r.cookie, r.priority, r.match.describe()) != key]
        self.table.append(rule)
        self.table.sort(key=lambda r: -r.priority)
        self._cache.clear()     # conservatively invalidate the fast path
        hooks = self.sim.hooks
        if hooks.has(FlowRuleInstalled):
            hooks.emit(FlowRuleInstalled(switch=self, rule=rule))

    def rules_for_cookie(self, cookie: str) -> list[FlowRule]:
        """The installed rules carrying a cookie (table order)."""
        return [r for r in self.table if r.cookie == cookie]

    def remove(self, cookie: str) -> list[FlowRule]:
        removed = [r for r in self.table if r.cookie == cookie]
        self.table = [r for r in self.table if r.cookie != cookie]
        self._cache.clear()
        hooks = self.sim.hooks
        if hooks.has(FlowRuleRemoved):
            hooks.emit(FlowRuleRemoved(switch=self, cookie=cookie,
                                       count=len(removed)))
        return removed

    def lookup(self, packet: Packet) -> Optional[FlowRule]:
        for rule in self.table:
            if rule.match.matches(packet):
                return rule
        return None

    # -- data path --------------------------------------------------------

    def on_receive(self, packet: Packet, link: "Link") -> None:
        key = _cache_key(packet)
        rule = self._cache.get(key)
        cached = rule is not None
        if rule is None:
            rule = self.lookup(packet)
            if rule is None:
                self.table_misses += 1
                hooks = self.sim.hooks
                if hooks.has(TableMiss):
                    hooks.emit(TableMiss(switch=self, packet=packet))
                return
            if self.profile.has_fast_path:
                self._cache[key] = rule
        if cached:
            self.fast_path_hits += 1
        else:
            self.slow_path_hits += 1
        cost = self.profile.cost_for(cached)
        start = max(self.sim.now, self._cpu_free_at)
        self._cpu_free_at = start + cost
        fluid = self._fluid_cpu
        if fluid is not None:
            # aggregated background occupies the same serial CPU: the
            # packet waits behind the instantaneous fluid backlog, but
            # the wait is *not* chained into the busy-until clock (the
            # backlog itself already carries that state forward)
            start += fluid.packet_wait(self.sim.now)
        done = start + cost
        if done <= self.sim.now:
            self._forward(packet, rule)
        else:
            self.sim.schedule(done - self.sim.now, self._forward,
                              packet, rule)

    def _forward(self, packet: Packet, rule: FlowRule) -> None:
        rule.record(packet)
        for action in rule.actions:
            if isinstance(action, Output):
                self.send(action.port, packet)
            else:
                packet = action.apply(packet)
