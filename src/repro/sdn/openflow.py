"""OpenFlow-style flow matches, actions and rules (GTP-extended).

The match structure covers the fields the GW user planes need: the outer
GTP-U TEID for tunnelled traffic and the inner five-tuple for bare IP
traffic (downlink classification at the PGW-U).  Actions mirror the
paper's OVS extension: GTP decap, GTP encap toward a given F-TEID, and
output to a logical port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.epc.gtp import gtp_decapsulate, gtp_encapsulate, gtp_teid
from repro.sim.packet import Packet


@dataclass(frozen=True)
class FlowMatch:
    """Wildcard-capable match over outer TEID and inner five-tuple."""

    teid: Optional[int] = None
    src_ip: Optional[str] = None
    dst_ip: Optional[str] = None
    protocol: Optional[str] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        if self.teid is not None and gtp_teid(packet) != self.teid:
            return False
        if self.src_ip is not None and packet.src != self.src_ip:
            return False
        if self.dst_ip is not None and packet.dst != self.dst_ip:
            return False
        if self.protocol is not None and packet.protocol != self.protocol:
            return False
        if self.src_port is not None and packet.src_port != self.src_port:
            return False
        if self.dst_port is not None and packet.dst_port != self.dst_port:
            return False
        return True

    def describe(self) -> str:
        parts = []
        for name in ("teid", "src_ip", "dst_ip", "protocol",
                     "src_port", "dst_port"):
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        return ",".join(parts) or "any"


@dataclass(frozen=True)
class GtpDecap:
    """Pop the outer GTP-U/UDP/IP stack."""

    def apply(self, packet: Packet) -> Packet:
        packet, _ = gtp_decapsulate(packet)
        return packet


@dataclass(frozen=True)
class GtpEncap:
    """Push a GTP-U/UDP/IP stack toward a tunnel endpoint."""

    teid: int
    src: str
    dst: str

    def apply(self, packet: Packet) -> Packet:
        return gtp_encapsulate(packet, self.teid, self.src, self.dst)


@dataclass(frozen=True)
class Output:
    """Forward out a named switch port (terminal action)."""

    port: str

    def apply(self, packet: Packet) -> Packet:  # pragma: no cover - marker
        return packet


Action = Union[GtpDecap, GtpEncap, Output]


@dataclass
class FlowRule:
    """A prioritized flow-table entry."""

    match: FlowMatch
    actions: list[Action]
    priority: int = 100
    cookie: str = ""
    packets: int = 0
    bytes: int = 0

    def __post_init__(self) -> None:
        outputs = [a for a in self.actions if isinstance(a, Output)]
        if len(outputs) != 1 or not isinstance(self.actions[-1], Output):
            raise ValueError(
                "a flow rule needs exactly one Output action, last")

    @property
    def output_port(self) -> str:
        return self.actions[-1].port  # type: ignore[union-attr]

    def record(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.wire_size
