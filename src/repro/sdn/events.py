"""Typed SDN data-plane events published on the hook bus.

Emitted by :class:`~repro.sdn.switch.FlowSwitch` whenever its table
changes or a packet misses it.  The paging manager subscribes to
:class:`TableMiss` instead of planting a ``miss_handler`` callback on
each gateway, so several observers can watch the same switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdn.openflow import FlowRule
    from repro.sdn.switch import FlowSwitch
    from repro.sim.packet import Packet


@dataclass(frozen=True)
class FlowRuleInstalled:
    """A rule was added to a switch's table."""

    switch: "FlowSwitch"
    rule: "FlowRule"


@dataclass(frozen=True)
class FlowRuleRemoved:
    """Rules matching a cookie were removed from a switch's table."""

    switch: "FlowSwitch"
    cookie: str
    count: int


@dataclass(frozen=True)
class TableMiss:
    """A packet matched no rule and was dropped by the switch."""

    switch: "FlowSwitch"
    packet: "Packet"
